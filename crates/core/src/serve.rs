//! Sharded online detection service: the ROADMAP's "heavy traffic" serving
//! layer around [`OnlineUcad`]'s single-threaded deployment loop.
//!
//! Records are routed by a seeded hash of their `session_id` onto `N`
//! shards, each a worker `std::thread` owning one session partition (a
//! [`SessionTracker`], the same engine [`OnlineUcad`] runs on) behind a
//! bounded queue. Because sessions are partitioned — never split across
//! shards — and every scoring discipline is a pure function of a session's
//! own record sequence, the alert *set* is independent of the shard count
//! and of worker timing. Ordering is restored at drain time: every record
//! carries a global arrival sequence number, an alert inherits the sequence
//! number of the record that triggered it, and [`ShardedOnlineUcad::
//! drain_alerts`] flushes all queues and sorts by that number. The result:
//! N-shard output is byte-identical to the single-threaded path.
//!
//! Two levers trade latency for throughput:
//!
//! * **Batched scoring** ([`DetectionMode::Block`]): instead of one forward
//!   pass per operation, a shard defers scoring until a full model window of
//!   positions has arrived and scores the whole window in one pass (~`L`x
//!   fewer forwards); session close scores the tail. Streaming mode keeps
//!   the paper-exact per-operation rule and matches [`OnlineUcad`] alert for
//!   alert.
//! * **Score memoization** ([`ScoreCache`]): a shared LRU keyed by the exact
//!   padded key window. Production sessions draw from 1–2 workflows, so
//!   windows recur across sessions and shards; a hit skips the forward pass
//!   entirely and is bit-identical to computing it.
//!
//! # Fault tolerance
//!
//! A worker thread that panics mid-stream does **not** take its partition
//! down. Every accepted message is first appended to a per-shard
//! write-ahead snapshot ring (the *WAL*) that lives on the engine side of
//! the channel, and the worker publishes a processed-message watermark as
//! it goes. When the engine notices a dead worker — a failed channel send,
//! or the liveness check every [`ShardedOnlineUcad::flush`] performs — it
//! *supervises* the shard: the panic is captured and counted, the WAL is
//! replayed into a fresh [`SessionTracker`] (entries below the watermark
//! rebuild state silently; entries above it — the messages the crash ate —
//! are processed for real, alerts, metrics and all, under the model epoch
//! they were submitted against), and a new worker is spawned on the rebuilt
//! tracker. The restarted shard is byte-identical to one that never
//! crashed: no accepted record is lost, no record is scored twice, and
//! drained alerts keep their global sequence order. Deterministic crash and
//! overload scenarios can be injected with `ucad-fault` (the `UCAD_FAULTS`
//! environment variable); the chaos wall in `tests/chaos_serve.rs` holds
//! these invariants under seeded fault plans.
//!
//! # Durability and crash recovery
//!
//! The in-memory protection above heals *thread* deaths; a
//! [`DurabilityConfig`] extends it to *process* deaths. Every accepted
//! operation is then also appended — before its send — to a per-shard
//! segmented on-disk log (`ucad-wal`: CRC-framed records, fsync batching,
//! rotation), and periodic snapshots of each shard's session state bound
//! replay length and drive segment truncation. After a `kill -9`,
//! [`ShardedOnlineUcad::recover`] (or [`ShardedOnlineUcad::try_new_durable`]
//! on the same directory) reopens the logs, restores the newest intact
//! snapshot, replays the durable suffix, and resumes — producing the exact
//! alert stream a crash-free run would have. Replay is at-least-once by
//! construction (an alert delivered by [`ShardedOnlineUcad::drain_alerts`]
//! just before the crash is re-raised); the drain boundary makes it
//! exactly-once by logging a durable marker naming every delivered alert
//! sequence and filtering those out forever. `tests/crash_recovery.rs`
//! holds the byte-identity guarantee under a wall of injected
//! process-crash points.
//!
//! When a shard queue saturates, [`OverloadPolicy`] picks the failure mode:
//! block the submitter (default, lossless backpressure), shed the newest
//! record (typed [`SubmitOutcome::Shed`], counted), or degrade — score the
//! record caller-side with a cheap [`NgramLm`] fallback and tag any alert it
//! raises `degraded: true` for a second look once the overload clears.
//!
//! [`OnlineUcad`]: crate::online::OnlineUcad
//! [`SessionTracker`]: crate::online::SessionTracker

use crate::admission::{merge_seq_sorted, splitmix64};
use crate::online::{Alert, AlertReason, RaisedAlert, ServeObserver, SessionTracker, TrackerState};
use crate::system::Ucad;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ucad_baselines::NgramLm;
use ucad_dbsim::LogRecord;
use ucad_model::{CacheStats, DetectionMode, ScoreCache, TransDas, UcadError};
use ucad_obs::{
    latency_log_bounds, Counter, FlightEntry, FlightRecorder, Gauge, Histogram, MetricKind,
    Registry,
};
use ucad_wal::{SegmentedWal, SnapshotStore, WalMetrics, WalOptions};

/// Locks a mutex, recovering the guard when a panicking worker poisoned it
/// (the protected structures are always left in a consistent state: every
/// critical section is a push, pop or retain that cannot be observed
/// half-done).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What the engine does when a record arrives for a shard whose queue is
/// full (or whose saturation is forced by an armed `ucad-fault` plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block the submitter until the shard catches up — lossless
    /// backpressure, the historical behavior.
    #[default]
    Block,
    /// Drop the newest record. The submitter gets [`SubmitOutcome::Shed`]
    /// and `ucad_serve_records_shed_total` counts the loss; the shed record
    /// never reaches a tracker, so its session's later context simply skips
    /// it.
    ShedNewest,
    /// Score the record caller-side with the cheap n-gram fallback instead
    /// of the full Trans-DAS path. Alerts raised this way carry
    /// `degraded: true`. Requires a fitted [`NgramLm`] at construction
    /// ([`ShardedOnlineUcad::try_new_full`]).
    Degrade,
}

/// What happened to one submitted record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubmitOutcome {
    /// The record reached its shard (directly, or via supervision replay
    /// when the shard's worker had died) and will be scored by the full
    /// model path.
    Accepted,
    /// The shard was saturated under [`OverloadPolicy::ShedNewest`]; the
    /// record was dropped.
    Shed,
    /// The shard was saturated under [`OverloadPolicy::Degrade`]; the
    /// record was scored by the n-gram fallback instead.
    Degraded,
}

/// Configuration of the sharded serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of worker shards (>= 1).
    pub shards: usize,
    /// Bound of each shard's record queue; submission blocks when the
    /// owning shard is this far behind (backpressure).
    pub queue_capacity: usize,
    /// Capacity of the shared score memo in windows; 0 disables caching.
    pub cache_capacity: usize,
    /// Scoring discipline. `Streaming` is paper-exact and alert-for-alert
    /// identical to [`crate::OnlineUcad`]; `Block` batches scoring into
    /// one forward pass per model window.
    pub mode: DetectionMode,
    /// Seed of the session-to-shard hash, so shard assignment (and with it
    /// queue interleaving) is reproducible run to run.
    pub seed: u64,
    /// Capacity of the flight recorder's alert ring buffer; 0 disables
    /// flight recording.
    pub flight_capacity: usize,
    /// What to do with a record whose shard queue is full.
    pub overload: OverloadPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 1024,
            cache_capacity: 256,
            mode: DetectionMode::Streaming,
            seed: 0x5EED,
            flight_capacity: 256,
            overload: OverloadPolicy::Block,
        }
    }
}

impl ServeConfig {
    /// Fluent builder starting from [`ServeConfig::default`].
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builder for [`ServeConfig`]; validates on [`ServeConfigBuilder::build`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the worker shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Sets the per-shard queue bound.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.cfg.queue_capacity = queue_capacity;
        self
    }

    /// Sets the score-memo capacity (0 disables caching).
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cfg.cache_capacity = cache_capacity;
        self
    }

    /// Sets the scoring discipline.
    pub fn mode(mut self, mode: DetectionMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Sets the shard-routing hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the flight-recorder ring capacity (0 disables flight recording).
    pub fn flight_capacity(mut self, flight_capacity: usize) -> Self {
        self.cfg.flight_capacity = flight_capacity;
        self
    }

    /// Sets the overload policy for saturated shard queues.
    pub fn overload(mut self, overload: OverloadPolicy) -> Self {
        self.cfg.overload = overload;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ServeConfig, UcadError> {
        if self.cfg.shards == 0 {
            return Err(UcadError::invalid("shards", "at least one shard required"));
        }
        if self.cfg.queue_capacity == 0 {
            return Err(UcadError::invalid(
                "queue_capacity",
                "a zero-capacity queue would deadlock submission",
            ));
        }
        Ok(self.cfg)
    }
}

/// Where and how the engine persists its state. Passed to
/// [`ShardedOnlineUcad::try_new_durable`] / [`ShardedOnlineUcad::recover`];
/// engines built without one keep the historical in-memory-only fault
/// tolerance (thread supervision, no process-crash recovery).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory of the durable state: `meta/` (routing config, drain
    /// markers, epoch cuts) plus `shard-N/wal/` and `shard-N/snap/` per
    /// shard.
    pub dir: PathBuf,
    /// Segment rotation threshold for the per-shard logs, in bytes.
    pub segment_max_bytes: u64,
    /// Fsync batching for the per-shard logs: sync after every N appends
    /// (1 = every record, strongest; 0 = only at barriers — drains,
    /// snapshots, shutdown). The meta log always syncs per record: drain
    /// markers are the exactly-once boundary and must never be lost.
    pub fsync_every: u64,
    /// Automatically snapshot every shard (and truncate the logs) once this
    /// many operations have been appended since the last snapshot, checked
    /// at drain time. 0 = automatic snapshots off; explicit
    /// [`ShardedOnlineUcad::snapshot`] calls and model swaps still snapshot.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default knobs: 1 MiB segments,
    /// fsync on every append, no automatic snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            segment_max_bytes: 1 << 20,
            fsync_every: 1,
            snapshot_every: 0,
        }
    }

    /// Sets the segment rotation threshold in bytes.
    pub fn segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes;
        self
    }

    /// Sets the fsync batch size for the per-shard logs.
    pub fn fsync_every(mut self, appends: u64) -> Self {
        self.fsync_every = appends;
        self
    }

    /// Sets the automatic snapshot cadence in appends (0 disables).
    pub fn snapshot_every(mut self, appends: u64) -> Self {
        self.snapshot_every = appends;
        self
    }
}

/// Counter snapshot of a running engine (or, through `ucad-net`, of a
/// remote daemon — the struct crosses the wire as JSON).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Records accepted per shard (indexed by shard id).
    pub records_per_shard: Vec<u64>,
    /// Alerts currently buffered, awaiting [`ShardedOnlineUcad::drain_alerts`].
    pub pending_alerts: usize,
    /// Score-memo counters; `None` when caching is disabled.
    pub cache: Option<CacheStats>,
    /// Records dropped under [`OverloadPolicy::ShedNewest`].
    pub records_shed: u64,
    /// Records scored by the n-gram fallback under
    /// [`OverloadPolicy::Degrade`].
    pub records_degraded: u64,
    /// Shard workers respawned by supervision after a panic.
    pub worker_restarts: u64,
}

impl ServeStats {
    /// Total records accepted across shards.
    pub fn records(&self) -> u64 {
        self.records_per_shard.iter().sum()
    }
}

/// Everything handed back when the engine shuts down.
pub struct ShutdownReport {
    /// The wrapped system (for persistence or fine-tuning).
    pub system: Ucad,
    /// Alerts raised since the last drain, in arrival order.
    pub alerts: Vec<Alert>,
    /// Verified-normal sessions accumulated by the workers' feedback
    /// buffers (grouped by shard), ready for the next fine-tuning round.
    pub verified_normals: Vec<Vec<u32>>,
    /// Worker threads that died of a panic, as `(shard id, panic message)`
    /// — captured by supervision mid-run or by the final join. A panicked
    /// shard loses nothing: supervision replays its write-ahead log, so
    /// alerts, feedback and record counts match a crash-free run.
    pub worker_panics: Vec<(usize, String)>,
    /// Shard workers supervision respawned over the engine's lifetime.
    pub worker_restarts: u64,
    /// The flight recorder's resident entries (per-alert diagnostics),
    /// oldest first.
    pub flight: Vec<FlightEntry>,
}

enum Msg {
    /// A routed record with its global arrival sequence number, the shard
    /// queue depth observed at enqueue time, and the enqueue instant — the
    /// record's trace context. The worker derives queue-wait latency from
    /// the instant; it never influences scoring, so tracing cannot perturb
    /// the alert stream.
    Record(Arc<LogRecord>, u64, usize, Instant),
    Close(u64, usize),
    FalseAlarm(u64),
    /// Barrier: every message sent before this one has been processed once
    /// the acknowledgement arrives (per-shard queues are FIFO).
    Flush(SyncSender<()>),
    /// Model hot-swap: the worker replaces its shared system handle. Sent
    /// after a flush barrier, so everything submitted before the swap was
    /// scored by the old model and (FIFO) everything after it by the new.
    Swap(Arc<Ucad>),
    /// State export barrier: the worker answers with its tracker's full
    /// session state (used to build durable snapshots). Like `Flush`, it
    /// carries no session state of its own and is never logged.
    Export(SyncSender<TrackerState>),
    Shutdown,
    /// Test hook: makes the worker panic, exercising the supervision and
    /// shutdown panic-capture paths.
    #[cfg(test)]
    Panic,
}

/// Payload of one write-ahead log entry — the engine-side copy of a
/// stateful message, sufficient to re-derive the worker's entire effect.
/// Flush/swap barriers are not logged: they carry no session state.
#[derive(Clone)]
enum WalMsg {
    /// A record and its global arrival sequence number.
    Record(Arc<LogRecord>, u64),
    Close(u64),
    FalseAlarm(u64),
}

/// One entry of a shard's write-ahead log.
#[derive(Clone)]
struct WalEntry {
    /// Position in the shard's processing order. Appends are contiguous
    /// and per-shard queues are FIFO, so `idx < watermark` ⟺ the worker
    /// fully processed this entry before it (last) crashed.
    idx: u64,
    /// Model epoch the entry was submitted under; replay scores it with
    /// exactly that model, so a crash straddling a hot-swap still rebuilds
    /// byte-identical state.
    epoch: u64,
    session_id: u64,
    msg: WalMsg,
}

/// Per-shard write-ahead snapshot ring. The engine appends before every
/// send; the worker truncates a session's entries once it closes (they can
/// never be needed again); supervision replays what remains.
#[derive(Default)]
struct Wal {
    entries: Vec<WalEntry>,
    /// Index the next appended entry receives; equals the count of entries
    /// ever appended (pops of never-sent entries roll it back).
    next_idx: u64,
}

impl Wal {
    fn append(&mut self, epoch: u64, session_id: u64, msg: WalMsg) -> u64 {
        let idx = self.next_idx;
        self.next_idx += 1;
        self.entries.push(WalEntry {
            idx,
            epoch,
            session_id,
            msg,
        });
        idx
    }

    /// Removes the just-appended entry `idx` after its send was refused
    /// (shed or degraded record), rolling `next_idx` back so the log stays
    /// contiguous with the worker's count-based watermark. Only the engine
    /// appends and submission is serialized, so `idx` is always the tail.
    fn pop_unsent(&mut self, idx: u64) {
        debug_assert_eq!(self.entries.last().map(|e| e.idx), Some(idx));
        self.entries.pop();
        self.next_idx = idx;
    }
}

/// One durable (on-disk) log record of a shard, JSON-encoded inside the
/// WAL's CRC frame. The disk analogue of [`WalMsg`], with two differences:
/// entries carry their model epoch inline, and a refused send cannot *pop*
/// an already-written entry — it appends a [`DurableEntry::Revoke`] instead.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum DurableEntry {
    /// An accepted record with its global arrival sequence number and the
    /// model epoch it was submitted under.
    Record {
        seq: u64,
        epoch: u64,
        record: LogRecord,
    },
    /// A session close.
    Close { session_id: u64, epoch: u64 },
    /// A false-alarm confirmation.
    FalseAlarm { session_id: u64, epoch: u64 },
    /// Cancels the immediately preceding entry: its send was refused (shed
    /// or degraded), so replay must not score it. Always directly follows
    /// the entry it cancels — the engine appends it in the same submission.
    Revoke,
}

/// One record of the engine-global meta log (`dir/meta`), which is never
/// truncated and always fsynced per append.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum MetaEntry {
    /// Written once when a durable directory is first initialized; recovery
    /// rejects an engine whose routing (shard count, seed) or scoring
    /// discipline differs, since shard logs would no longer line up.
    Config {
        shards: usize,
        seed: u64,
        mode: DetectionMode,
    },
    /// A completed [`ShardedOnlineUcad::drain_alerts`]: the global sequence
    /// counter at the drain and the alert seqs handed to the caller. Replay
    /// filters these out forever — the exactly-once boundary.
    Drain { next_seq: u64, delivered: Vec<u64> },
    /// A completed model hot-swap; recovery resumes at the highest epoch.
    Epoch { epoch: u64 },
}

/// A durable snapshot of one shard's full serving state, committed
/// atomically via the shard's [`SnapshotStore`]. Recovery restores the
/// newest intact snapshot and replays only the durable entries at or after
/// `wal_idx`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardSnapshot {
    /// Durable log index the snapshot covers up to (exclusive).
    wal_idx: u64,
    /// Model epoch at snapshot time.
    epoch: u64,
    /// Global sequence counter at snapshot time.
    next_seq: u64,
    /// Cumulative effective (non-revoked) durable operations folded into
    /// this snapshot — the resume watermark for a replaying driver.
    ops: u64,
    /// The shard tracker's exported session state.
    tracker: TrackerState,
    /// Alerts raised but not yet drained at snapshot time.
    outbox: Vec<(u64, Alert)>,
    /// Verified-normal feedback not yet drained at snapshot time.
    feedback: Vec<Vec<u32>>,
}

fn encode_json<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("durable serve records serialize infallibly")
        .into_bytes()
}

fn decode_json<T: Deserialize>(payload: &[u8], origin: &str) -> Result<T, UcadError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| UcadError::corrupt(origin, "durable record is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| UcadError::corrupt(origin, format!("durable record does not parse: {e}")))
}

/// The durable half of one shard: its segmented log and snapshot store.
struct ShardDurable {
    wal: SegmentedWal,
    snaps: SnapshotStore,
    /// Effective (non-revoked) durable operations this shard has logged or
    /// folded into snapshots, over the directory's whole lifetime.
    ops: u64,
    /// `wal_idx` of the previous retained snapshot: segments wholly below
    /// it are unreachable even if the newest snapshot turns out damaged
    /// (the store keeps two), so they are truncated at the next snapshot.
    last_snap: u64,
}

/// Everything behind a [`DurabilityConfig`]: the meta log, the per-shard
/// logs and snapshot stores, and the delivered-alert filter.
struct DurableState {
    cfg: DurabilityConfig,
    meta: SegmentedWal,
    shards: Vec<ShardDurable>,
    /// Alert seqs already handed to a caller by a recorded drain; replayed
    /// duplicates of these are filtered at the next drain.
    delivered: HashSet<u64>,
    /// Shard-log appends since the last snapshot round, for the automatic
    /// snapshot cadence.
    appends_since_snapshot: u64,
}

/// One undrained alert with its trace context: the global sequence of the
/// triggering record and the instant it was raised (for drain-delay
/// attribution; `None` for alerts restored from a durable snapshot, whose
/// raise instant belongs to a previous process life).
struct OutboxAlert {
    seq: u64,
    raised_at: Option<Instant>,
    alert: Alert,
}

#[derive(Default)]
struct Outbox {
    alerts: Vec<OutboxAlert>,
}

/// Supervision base installed by a durable snapshot (and by recovery): the
/// state an in-memory replay starts from instead of an empty tracker, so
/// the in-memory log can be pruned below it.
#[derive(Clone)]
struct BaseState {
    /// In-memory log index the state covers up to (exclusive); entries
    /// below it are folded into `state` and pruned.
    idx: u64,
    /// Session ids open in `state`. Their later log entries — including the
    /// eventual close — must survive pruning until the base advances past
    /// them, or a replay would resurrect the session.
    open: HashSet<u64>,
    state: TrackerState,
}

/// The engine-side shared state of one shard: everything that must survive
/// a worker crash, plus the shard's pre-fetched registry handles (the hot
/// loop never takes the registry mutex).
#[derive(Clone)]
struct ShardHandles {
    outbox: Arc<Mutex<Outbox>>,
    wal: Arc<Mutex<Wal>>,
    /// Count of stateful messages the worker has fully processed — the
    /// replay watermark. Bumped only after an entry's complete effect
    /// (metrics, alerts, feedback) has landed, so a crash mid-message
    /// replays it exactly once.
    processed: Arc<AtomicU64>,
    /// Verified-normal feedback, exported by the worker immediately on
    /// session close so a later crash cannot lose it.
    feedback: Arc<Mutex<Vec<Vec<u32>>>>,
    /// Supervision base; `None` until a snapshot or recovery installs one.
    base: Arc<Mutex<Option<BaseState>>>,
    records: Counter,
    alerts: Counter,
    queue_depth: Gauge,
    score_latency: Histogram,
    /// Engine-wide queue-wait stage histogram
    /// (`ucad_latency_queue_wait_seconds`) — one series shared by every
    /// shard, cloned into the handles so the hot loop stays registry-free.
    queue_wait: Histogram,
    /// Engine-wide scoring stage histogram (`ucad_latency_score_seconds`),
    /// the unlabeled cross-shard companion of `score_latency`.
    latency_score: Histogram,
}

/// The restartable half of a shard: the channel sender and the worker's
/// join handle, swapped out together when supervision respawns the worker.
struct ShardLink {
    tx: SyncSender<Msg>,
    handle: Option<JoinHandle<SessionTracker>>,
}

struct Shard {
    link: Mutex<ShardLink>,
    h: ShardHandles,
}

/// Books a raised alert: the outbox (for deterministic draining), the
/// alert counter, the flight recorder, and — when `UCAD_OBS` is on — a
/// structured event line. Shared by the worker hot loop and supervision
/// replay, so a replayed alert is booked exactly like a live one.
fn book_alert(
    h: &ShardHandles,
    shard: usize,
    flight: &FlightRecorder,
    observer: Option<&dyn ServeObserver>,
    raised: RaisedAlert,
    queue_depth: usize,
    queue_wait_us: Option<f64>,
) {
    h.alerts.inc();
    let reason = format!("{:?}", raised.alert.reason);
    flight.record(FlightEntry {
        seq: raised.seq,
        session_id: raised.alert.session_id,
        shard,
        tenant: None,
        reason: reason.clone(),
        position: raised.alert.position,
        rank: raised.rank,
        score: raised.score,
        cache_hit: raised.cache_hit,
        queue_depth,
        queue_wait_us,
        drain_delay_us: None,
        key_window: raised.key_window,
    });
    ucad_obs::event(
        "serve.alert",
        &[
            ("session_id", raised.alert.session_id.to_string()),
            ("shard", shard.to_string()),
            ("reason", reason),
            ("seq", raised.seq.to_string()),
        ],
    );
    if let Some(observer) = observer {
        observer.on_alert(&raised.alert);
    }
    lock(&h.outbox).alerts.push(OutboxAlert {
        seq: raised.seq,
        raised_at: Some(Instant::now()),
        alert: raised.alert,
    });
}

/// The immutable-per-spawn inputs of a worker thread (the system handle is
/// replaced in place by a hot-swap message).
struct WorkerSpec {
    shard: usize,
    system: Arc<Ucad>,
    cache: Option<Arc<ScoreCache>>,
    flight: Arc<FlightRecorder>,
    observer: Option<Arc<dyn ServeObserver>>,
}

fn spawn_worker(
    spec: WorkerSpec,
    h: ShardHandles,
    queue_capacity: usize,
    tracker: SessionTracker,
) -> ShardLink {
    let (tx, rx) = sync_channel(queue_capacity.max(1));
    let handle = std::thread::spawn(move || worker(rx, spec, h, tracker));
    ShardLink {
        tx,
        handle: Some(handle),
    }
}

fn worker(
    rx: Receiver<Msg>,
    mut spec: WorkerSpec,
    h: ShardHandles,
    mut tracker: SessionTracker,
) -> SessionTracker {
    let observer = spec.observer.clone();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Record(record, seq, depth, enqueued) => {
                // Fault hook first: an injected crash eats the message
                // before any of its effects land, so supervision replays
                // it exactly once.
                ucad_fault::on_worker_record(spec.shard);
                h.records.inc();
                h.queue_depth.add(-1.0);
                let queue_wait = enqueued.elapsed().as_secs_f64();
                h.queue_wait.observe(queue_wait);
                let start = Instant::now();
                let raised = tracker.ingest(
                    &spec.system,
                    spec.cache.as_deref(),
                    observer.as_deref(),
                    &record,
                    seq,
                );
                let score_secs = start.elapsed().as_secs_f64();
                h.score_latency.observe(score_secs);
                h.latency_score.observe(score_secs);
                if let Some(raised) = raised {
                    book_alert(
                        &h,
                        spec.shard,
                        &spec.flight,
                        observer.as_deref(),
                        raised,
                        depth,
                        Some(queue_wait * 1e6),
                    );
                }
                if let Some(observer) = observer.as_deref() {
                    observer.on_scored(seq);
                }
                h.processed.fetch_add(1, Ordering::SeqCst);
            }
            Msg::Close(session_id, depth) => {
                h.queue_depth.add(-1.0);
                if let Some(raised) = tracker.close(
                    &spec.system,
                    spec.cache.as_deref(),
                    observer.as_deref(),
                    session_id,
                ) {
                    // Close-raised alerts carry no per-record queue wait —
                    // the control message's residency is not the record's.
                    book_alert(
                        &h,
                        spec.shard,
                        &spec.flight,
                        observer.as_deref(),
                        raised,
                        depth,
                        None,
                    );
                }
                let mut normals = tracker.take_verified_normals();
                if !normals.is_empty() {
                    lock(&h.feedback).append(&mut normals);
                }
                let now = h.processed.fetch_add(1, Ordering::SeqCst) + 1;
                // The session is gone; its log entries can never be needed
                // by a replay again. Entries at or above the watermark
                // belong to a re-opened session with the same id — keep.
                // Exception: the supervision base still lists the session
                // open, so replay starts before this close — pruning its
                // entries (this close included) would resurrect it. Keep
                // them until the next snapshot refreshes the base.
                let base_open = lock(&h.base)
                    .as_ref()
                    .is_some_and(|b| b.open.contains(&session_id));
                if !base_open {
                    lock(&h.wal)
                        .entries
                        .retain(|e| e.session_id != session_id || e.idx >= now);
                }
            }
            Msg::FalseAlarm(session_id) => {
                h.queue_depth.add(-1.0);
                tracker.confirm_false_alarm(session_id);
                let mut normals = tracker.take_verified_normals();
                if !normals.is_empty() {
                    lock(&h.feedback).append(&mut normals);
                }
                let now = h.processed.fetch_add(1, Ordering::SeqCst) + 1;
                let base_open = lock(&h.base)
                    .as_ref()
                    .is_some_and(|b| b.open.contains(&session_id));
                if !base_open {
                    lock(&h.wal)
                        .entries
                        .retain(|e| e.session_id != session_id || e.idx >= now);
                }
            }
            Msg::Flush(ack) => {
                let _ = ack.send(());
            }
            Msg::Export(ack) => {
                let _ = ack.send(tracker.export_state());
            }
            Msg::Swap(system) => {
                spec.system = system;
            }
            Msg::Shutdown => break,
            #[cfg(test)]
            Msg::Panic => panic!("injected worker panic"),
        }
    }
    tracker
}

/// Per-session shadow state the engine keeps under
/// [`OverloadPolicy::Degrade`], fed on every submit so the fallback model
/// has full context when saturation forces it to score.
#[derive(Default)]
struct DegradeShadow {
    keys: Vec<u32>,
    alerted: bool,
}

struct DegradeState {
    lm: NgramLm,
    sessions: HashMap<u64, DegradeShadow>,
}

/// The sharded, memoizing, self-healing serving engine. See the module docs
/// for the architecture, the determinism guarantee and the fault-tolerance
/// protocol.
///
/// Every engine owns its own metrics [`Registry`] (exposed via
/// [`ShardedOnlineUcad::registry`] / [`ShardedOnlineUcad::render_metrics`]),
/// so concurrent engines — common in tests — never pollute each other's
/// counters. [`ServeStats`] and [`CacheStats`] are views over the same
/// registry cells, so snapshots and the Prometheus exposition always agree.
pub struct ShardedOnlineUcad {
    system: Arc<Ucad>,
    /// Every model epoch ever served, indexed by epoch number. Supervision
    /// replay scores each write-ahead entry with the model it was
    /// originally submitted under; the list grows by one Arc per hot-swap.
    systems: Vec<Arc<Ucad>>,
    cache: Option<Arc<ScoreCache>>,
    registry: Arc<Registry>,
    flight: Arc<FlightRecorder>,
    observer: Option<Arc<dyn ServeObserver>>,
    degrade: Option<DegradeState>,
    worker_panics: Counter,
    worker_restarts: Counter,
    records_shed: Counter,
    records_degraded: Counter,
    swaps: Counter,
    epoch_gauge: Gauge,
    /// Durable-WAL append stage latency (`ucad_latency_wal_append_seconds`)
    /// — observed on the submit path of durable engines only.
    wal_append_latency: Histogram,
    /// Raised-to-drained alert delay (`ucad_latency_drain_delay_seconds`),
    /// observed for every delivered alert at drain time.
    drain_delay_latency: Histogram,
    /// Panic messages captured by supervision and the final shutdown join,
    /// in capture order.
    panic_log: Mutex<Vec<(usize, String)>>,
    shards: Vec<Shard>,
    cfg: ServeConfig,
    next_seq: u64,
    /// Model epoch: 0 for the model the engine started with, +1 per
    /// completed [`ShardedOnlineUcad::swap_model`].
    epoch: u64,
    /// Epoch the engine's `systems[0]` corresponds to: 0 for a fresh
    /// engine, the recovered epoch after [`ShardedOnlineUcad::recover`]
    /// (pre-recovery models are gone; replay of an older-epoch entry clamps
    /// to the oldest model still held).
    epoch_base: u64,
    /// Durable state; `None` for in-memory-only engines.
    durable: Option<DurableState>,
}

impl ShardedOnlineUcad {
    /// Wraps a trained system and spawns the worker shards.
    ///
    /// # Panics
    /// Panics when `cfg.shards` is zero. Use
    /// [`ShardedOnlineUcad::try_new`] to handle invalid configurations
    /// without panicking.
    pub fn new(system: Ucad, cfg: ServeConfig) -> Self {
        Self::try_new(system, cfg).expect("invalid serve configuration")
    }

    /// Fallible constructor: rejects structurally invalid configurations
    /// with an [`UcadError`] instead of panicking.
    pub fn try_new(system: Ucad, cfg: ServeConfig) -> Result<Self, UcadError> {
        Self::try_new_full(system, cfg, None, None)
    }

    /// Like [`ShardedOnlineUcad::try_new`], additionally attaching a
    /// [`ServeObserver`] whose hooks run inline on the shard workers for
    /// every record, score, alert and session close — the feed a drift
    /// monitor subscribes to.
    pub fn try_new_observed(
        system: Ucad,
        cfg: ServeConfig,
        observer: Option<Arc<dyn ServeObserver>>,
    ) -> Result<Self, UcadError> {
        Self::try_new_full(system, cfg, observer, None)
    }

    /// Full constructor: observer plus the degraded-mode fallback model.
    /// [`OverloadPolicy::Degrade`] requires a *fitted* [`NgramLm`]
    /// (typically trained on the same sessions as the serving model);
    /// passing none — or an unfitted one — under that policy is rejected.
    pub fn try_new_full(
        system: Ucad,
        cfg: ServeConfig,
        observer: Option<Arc<dyn ServeObserver>>,
        fallback: Option<NgramLm>,
    ) -> Result<Self, UcadError> {
        Self::construct(system, cfg, observer, fallback, None)
    }

    /// Durable constructor: like [`ShardedOnlineUcad::try_new_full`], with
    /// every accepted operation appended to an on-disk WAL under
    /// `durability.dir` *before* it is sent to a shard (see the module's
    /// *Durability* section). On a fresh directory this starts a new
    /// durable engine; on a directory with prior state it performs full
    /// crash recovery first — same shard routing and scoring discipline
    /// required — and resumes exactly where the durable log ends.
    pub fn try_new_durable(
        system: Ucad,
        cfg: ServeConfig,
        observer: Option<Arc<dyn ServeObserver>>,
        fallback: Option<NgramLm>,
        durability: DurabilityConfig,
    ) -> Result<Self, UcadError> {
        Self::construct(system, cfg, observer, fallback, Some(durability))
    }

    /// Recovers (or freshly creates) a durable engine from
    /// `durability.dir`: restores the newest intact snapshot of every
    /// shard, replays the durable log suffix — re-raising every alert whose
    /// delivery was never recorded — and resumes accepting records. The
    /// caller provides the serving system: models are not persisted here,
    /// so train deterministically or load a `ucad-life` checkpoint.
    /// Equivalent to [`ShardedOnlineUcad::try_new_durable`] without
    /// observer or fallback.
    pub fn recover(
        system: Ucad,
        cfg: ServeConfig,
        durability: DurabilityConfig,
    ) -> Result<Self, UcadError> {
        Self::try_new_durable(system, cfg, None, None, durability)
    }

    fn construct(
        system: Ucad,
        cfg: ServeConfig,
        observer: Option<Arc<dyn ServeObserver>>,
        fallback: Option<NgramLm>,
        durability: Option<DurabilityConfig>,
    ) -> Result<Self, UcadError> {
        if cfg.shards == 0 {
            return Err(UcadError::invalid("shards", "at least one shard required"));
        }
        let mut degrade = match (cfg.overload, fallback) {
            (OverloadPolicy::Degrade, Some(lm)) if lm.is_fitted() => Some(DegradeState {
                lm,
                sessions: HashMap::new(),
            }),
            (OverloadPolicy::Degrade, _) => {
                return Err(UcadError::invalid(
                    "overload",
                    "the Degrade policy requires a fitted NgramLm fallback",
                ));
            }
            _ => None,
        };
        let system = Arc::new(system);
        let cache = (cfg.cache_capacity > 0).then(|| Arc::new(ScoreCache::new(cfg.cache_capacity)));
        let registry = Arc::new(Registry::new());
        registry.describe(
            "ucad_serve_records_total",
            MetricKind::Counter,
            "Records accepted per shard",
        );
        registry.describe(
            "ucad_serve_alerts_total",
            MetricKind::Counter,
            "Alerts raised per shard",
        );
        registry.describe(
            "ucad_serve_queue_depth",
            MetricKind::Gauge,
            "Messages enqueued on a shard but not yet processed",
        );
        registry.describe(
            "ucad_serve_score_duration_seconds",
            MetricKind::Histogram,
            "Per-record scoring latency (policy screen + model forward)",
        );
        registry.describe(
            "ucad_latency_queue_wait_seconds",
            MetricKind::Histogram,
            "Time a record spent in its shard queue between enqueue and scoring",
        );
        registry.describe(
            "ucad_latency_score_seconds",
            MetricKind::Histogram,
            "Per-record scoring stage latency, engine-wide across shards",
        );
        registry.describe(
            "ucad_latency_wal_append_seconds",
            MetricKind::Histogram,
            "Durable WAL append latency on the submit path",
        );
        registry.describe(
            "ucad_latency_drain_delay_seconds",
            MetricKind::Histogram,
            "Delay between an alert being raised and the drain that delivered it",
        );
        registry.describe(
            "ucad_serve_worker_panics_total",
            MetricKind::Counter,
            "Worker threads that died of a panic",
        );
        registry.describe(
            "ucad_serve_worker_restarts_total",
            MetricKind::Counter,
            "Shard workers respawned by supervision after a panic",
        );
        registry.describe(
            "ucad_serve_records_shed_total",
            MetricKind::Counter,
            "Records dropped by the ShedNewest overload policy",
        );
        registry.describe(
            "ucad_serve_records_degraded_total",
            MetricKind::Counter,
            "Records scored by the degraded-mode fallback instead of the model",
        );
        registry.describe(
            "ucad_serve_swaps_total",
            MetricKind::Counter,
            "Completed model hot-swaps",
        );
        registry.describe(
            "ucad_serve_model_epoch",
            MetricKind::Gauge,
            "Model epoch currently serving (0 = the model the engine started with)",
        );
        registry.describe(
            "ucad_wal_segments_total",
            MetricKind::Counter,
            "Durable WAL segment files opened for appending",
        );
        registry.describe(
            "ucad_wal_fsyncs_total",
            MetricKind::Counter,
            "Durable WAL fsync barriers issued",
        );
        registry.describe(
            "ucad_wal_appends_total",
            MetricKind::Counter,
            "Records appended to the durable WAL",
        );
        registry.describe(
            "ucad_wal_replayed_records_total",
            MetricKind::Counter,
            "Durable WAL records replayed during crash recovery",
        );
        registry.describe(
            "ucad_serve_recoveries_total",
            MetricKind::Counter,
            "Engine constructions that recovered prior durable state",
        );
        let flight = Arc::new(FlightRecorder::new(cfg.flight_capacity));
        flight.register_metrics(&registry);
        if let Some(cache) = &cache {
            cache.register_metrics(&registry, &[]);
        }
        let worker_panics = registry.counter("ucad_serve_worker_panics_total", &[]);
        let worker_restarts = registry.counter("ucad_serve_worker_restarts_total", &[]);
        let records_shed = registry.counter("ucad_serve_records_shed_total", &[]);
        let records_degraded = registry.counter("ucad_serve_records_degraded_total", &[]);
        let swaps = registry.counter("ucad_serve_swaps_total", &[]);
        let epoch_gauge = registry.gauge("ucad_serve_model_epoch", &[]);
        // Stage-latency histograms: registered unconditionally (a
        // zero-count histogram still exposes its bucket series) and
        // pre-fetched here so no hot path touches the registry mutex.
        let queue_wait =
            registry.histogram("ucad_latency_queue_wait_seconds", &[], latency_log_bounds());
        let latency_score =
            registry.histogram("ucad_latency_score_seconds", &[], latency_log_bounds());
        let wal_append_latency =
            registry.histogram("ucad_latency_wal_append_seconds", &[], latency_log_bounds());
        let drain_delay_latency = registry.histogram(
            "ucad_latency_drain_delay_seconds",
            &[],
            latency_log_bounds(),
        );
        let wal_metrics = WalMetrics {
            segments: registry.counter("ucad_wal_segments_total", &[]),
            fsyncs: registry.counter("ucad_wal_fsyncs_total", &[]),
            appends: registry.counter("ucad_wal_appends_total", &[]),
        };
        let replayed_records = registry.counter("ucad_wal_replayed_records_total", &[]);
        let recoveries = registry.counter("ucad_serve_recoveries_total", &[]);

        // Durable pre-pass: open the meta log and learn what a prior engine
        // life left behind (routing config to validate, delivered-alert
        // seqs for the exactly-once filter, the epoch to resume at).
        let mut next_seq = 0u64;
        let mut recovered_epoch = 0u64;
        let mut prior_state = false;
        let mut delivered: HashSet<u64> = HashSet::new();
        let mut meta: Option<SegmentedWal> = None;
        if let Some(dcfg) = &durability {
            let meta_dir = dcfg.dir.join("meta");
            let meta_origin = meta_dir.display().to_string();
            let meta_opts = WalOptions {
                // Never truncated and tiny: one segment per directory
                // lifetime is plenty, so rotation is effectively off.
                segment_max_bytes: u64::MAX,
                fsync_every: 1,
            };
            let (mut wal, rec) = SegmentedWal::open(meta_dir, meta_opts, wal_metrics.clone())?;
            for payload in &rec.entries {
                match decode_json::<MetaEntry>(payload, &meta_origin)? {
                    MetaEntry::Config { shards, seed, mode } => {
                        prior_state = true;
                        if shards != cfg.shards || seed != cfg.seed || mode != cfg.mode {
                            return Err(UcadError::invalid(
                                "durability",
                                format!(
                                    "directory was written with shards={shards}, seed={seed}, \
                                     mode={mode:?}; recovery requires the same shard routing \
                                     and scoring discipline (got shards={}, seed={}, mode={:?})",
                                    cfg.shards, cfg.seed, cfg.mode
                                ),
                            ));
                        }
                    }
                    MetaEntry::Drain {
                        next_seq: at,
                        delivered: seqs,
                    } => {
                        next_seq = next_seq.max(at);
                        delivered.extend(seqs);
                    }
                    MetaEntry::Epoch { epoch } => recovered_epoch = recovered_epoch.max(epoch),
                }
            }
            if !prior_state {
                wal.append(&encode_json(&MetaEntry::Config {
                    shards: cfg.shards,
                    seed: cfg.seed,
                    mode: cfg.mode,
                }))?;
            }
            meta = Some(wal);
        }

        let mut shard_durables: Vec<ShardDurable> = Vec::with_capacity(cfg.shards);
        let mut shards: Vec<Shard> = Vec::with_capacity(cfg.shards);
        let mut total_replayed = 0u64;
        for i in 0..cfg.shards {
            let shard_label = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", shard_label.as_str())];
            let h = ShardHandles {
                outbox: Arc::new(Mutex::new(Outbox::default())),
                wal: Arc::new(Mutex::new(Wal::default())),
                processed: Arc::new(AtomicU64::new(0)),
                feedback: Arc::new(Mutex::new(Vec::new())),
                base: Arc::new(Mutex::new(None)),
                records: registry.counter("ucad_serve_records_total", labels),
                alerts: registry.counter("ucad_serve_alerts_total", labels),
                queue_depth: registry.gauge("ucad_serve_queue_depth", labels),
                score_latency: registry.histogram(
                    "ucad_serve_score_duration_seconds",
                    labels,
                    latency_log_bounds(),
                ),
                queue_wait: queue_wait.clone(),
                latency_score: latency_score.clone(),
            };
            let mut tracker = SessionTracker::new(cfg.mode);
            if let Some(dcfg) = &durability {
                let shard_dir = dcfg.dir.join(format!("shard-{i}"));
                let origin = shard_dir.display().to_string();
                let shard_opts = WalOptions {
                    segment_max_bytes: dcfg.segment_max_bytes,
                    fsync_every: dcfg.fsync_every,
                };
                let (wal, rec) =
                    SegmentedWal::open(shard_dir.join("wal"), shard_opts, wal_metrics.clone())?;
                let snaps = SnapshotStore::open(shard_dir.join("snap"))?;
                let mut ops = 0u64;
                let mut from_idx = rec.first_idx;
                if let Some((snap_seq, payload)) = snaps.load_latest()? {
                    let snap: ShardSnapshot = decode_json(&payload, &origin)?;
                    prior_state = true;
                    tracker = SessionTracker::import_state(cfg.mode, snap.tracker);
                    // Restored alerts lost their raise instant with the
                    // process that raised them: no drain-delay attribution.
                    lock(&h.outbox).alerts = snap
                        .outbox
                        .into_iter()
                        .map(|(seq, alert)| OutboxAlert {
                            seq,
                            raised_at: None,
                            alert,
                        })
                        .collect();
                    *lock(&h.feedback) = snap.feedback;
                    next_seq = next_seq.max(snap.next_seq);
                    recovered_epoch = recovered_epoch.max(snap.epoch);
                    ops = snap.ops;
                    from_idx = snap_seq;
                }
                // Decode the durable suffix and drop revoked pairs. A
                // `Revoke` always directly follows the entry it cancels and
                // never straddles a snapshot cut (both are appended in one
                // submission, snapshots only between submissions), so a
                // simple pop suffices.
                let mut effective: Vec<DurableEntry> = Vec::new();
                for (off, payload) in rec.entries.iter().enumerate() {
                    if rec.first_idx + (off as u64) < from_idx {
                        continue;
                    }
                    match decode_json::<DurableEntry>(payload, &origin)? {
                        DurableEntry::Revoke => {
                            effective.pop();
                        }
                        entry => effective.push(entry),
                    }
                }
                if !effective.is_empty() {
                    prior_state = true;
                }
                // Replay the suffix into the tracker, alerts and all. The
                // score cache is skipped: recovery is rare, and a memoized
                // score is bit-identical to a computed one, so the rebuilt
                // state (and the alert stream) cannot differ. The observer
                // is skipped too — its feed is per engine life.
                for entry in &effective {
                    ops += 1;
                    match entry {
                        DurableEntry::Record { seq, record, .. } => {
                            h.records.inc();
                            replayed_records.inc();
                            total_replayed += 1;
                            let raised = tracker.ingest(&system, None, None, record, *seq);
                            if let Some(raised) = raised {
                                book_alert(&h, i, &flight, None, raised, 0, None);
                            }
                            next_seq = next_seq.max(seq + 1);
                        }
                        DurableEntry::Close { session_id, .. } => {
                            replayed_records.inc();
                            total_replayed += 1;
                            let raised = tracker.close(&system, None, None, *session_id);
                            let mut normals = tracker.take_verified_normals();
                            if let Some(raised) = raised {
                                book_alert(&h, i, &flight, None, raised, 0, None);
                            }
                            if !normals.is_empty() {
                                lock(&h.feedback).append(&mut normals);
                            }
                        }
                        DurableEntry::FalseAlarm { session_id, .. } => {
                            replayed_records.inc();
                            total_replayed += 1;
                            tracker.confirm_false_alarm(*session_id);
                            let mut normals = tracker.take_verified_normals();
                            if !normals.is_empty() {
                                lock(&h.feedback).append(&mut normals);
                            }
                        }
                        DurableEntry::Revoke => unreachable!("revoked pairs dropped above"),
                    }
                }
                // The rebuilt state becomes the supervision base (the
                // in-memory log restarts empty) and refeeds the degraded-
                // mode shadows, so every post-recovery path has context.
                let state = tracker.export_state();
                if let Some(dstate) = degrade.as_mut() {
                    for s in &state.sessions {
                        dstate.sessions.insert(
                            s.session.id,
                            DegradeShadow {
                                keys: s.keys.clone(),
                                alerted: s.alerted,
                            },
                        );
                    }
                }
                let open: HashSet<u64> = state.sessions.iter().map(|s| s.session.id).collect();
                *lock(&h.base) = Some(BaseState {
                    idx: 0,
                    open,
                    state,
                });
                shard_durables.push(ShardDurable {
                    wal,
                    snaps,
                    ops,
                    last_snap: from_idx,
                });
            }
            let spec = WorkerSpec {
                shard: i,
                system: Arc::clone(&system),
                cache: cache.clone(),
                flight: Arc::clone(&flight),
                observer: observer.clone(),
            };
            let link = spawn_worker(spec, h.clone(), cfg.queue_capacity, tracker);
            shards.push(Shard {
                link: Mutex::new(link),
                h,
            });
        }
        let durable = durability.map(|dcfg| DurableState {
            cfg: dcfg,
            meta: meta.expect("meta log opened whenever durability is configured"),
            shards: shard_durables,
            delivered,
            appends_since_snapshot: 0,
        });
        epoch_gauge.set(recovered_epoch as f64);
        if prior_state {
            recoveries.inc();
            ucad_obs::event(
                "serve.recovery",
                &[
                    ("replayed", total_replayed.to_string()),
                    ("epoch", recovered_epoch.to_string()),
                    ("next_seq", next_seq.to_string()),
                ],
            );
        }
        Ok(ShardedOnlineUcad {
            systems: vec![Arc::clone(&system)],
            system,
            cache,
            registry,
            flight,
            observer,
            degrade,
            worker_panics,
            worker_restarts,
            records_shed,
            records_degraded,
            swaps,
            epoch_gauge,
            wal_append_latency,
            drain_delay_latency,
            panic_log: Mutex::new(Vec::new()),
            shards,
            cfg,
            next_seq,
            epoch: recovered_epoch,
            epoch_base: recovered_epoch,
            durable,
        })
    }

    /// Read access to the wrapped system.
    pub fn system(&self) -> &Ucad {
        &self.system
    }

    /// The shard a session routes to.
    pub fn shard_of(&self, session_id: u64) -> usize {
        (splitmix64(self.cfg.seed ^ session_id) % self.cfg.shards as u64) as usize
    }

    /// Captures a worker panic: the panic log (surfaced in the
    /// [`ShutdownReport`]), the panic counter, and an event line.
    fn record_panic(&self, shard: usize, panic: Box<dyn std::any::Any + Send>) {
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        self.worker_panics.inc();
        ucad_obs::event(
            "serve.worker_panic",
            &[("shard", shard.to_string()), ("message", message.clone())],
        );
        lock(&self.panic_log).push((shard, message));
    }

    /// Checks shard `i` for a dead worker and, if found, heals it: joins
    /// the corpse (capturing the panic), replays the shard's write-ahead
    /// log into a fresh tracker — entries below the processed watermark
    /// rebuild state silently, entries above it are processed for real
    /// under their original model epoch — and respawns the worker on the
    /// rebuilt tracker. Returns whether a restart happened.
    ///
    /// `force` skips the liveness probe: a failed channel send proves the
    /// receiver is gone even while the worker thread is still unwinding,
    /// so the caller must supervise unconditionally (the join below waits
    /// out the unwind).
    fn supervise_shard(&self, i: usize, force: bool) -> bool {
        let shard = &self.shards[i];
        let mut link = lock(&shard.link);
        let dead = match &link.handle {
            Some(handle) => force || handle.is_finished(),
            None => false,
        };
        if !dead {
            return false;
        }
        let handle = link.handle.take().expect("liveness-checked above");
        match handle.join() {
            Ok(_tracker) => {
                // Clean exit (shutdown raced a supervision pass): nothing
                // to heal, but the link must be respawned all the same so
                // the engine keeps accepting this shard's sessions.
            }
            Err(panic) => self.record_panic(i, panic),
        }
        // Snapshot the log and watermark. The worker is dead and submission
        // is externally serialized, so both are frozen.
        let (entries, wal_top) = {
            let wal = lock(&shard.h.wal);
            (wal.entries.clone(), wal.next_idx)
        };
        let watermark = shard.h.processed.load(Ordering::SeqCst);
        let observer = self.observer.clone();
        // Replay starts from the supervision base (installed by a durable
        // snapshot or by recovery) when one exists; entries below its index
        // are folded into that state already.
        let base = lock(&shard.h.base).clone();
        let (base_idx, mut tracker) = match &base {
            Some(b) => (
                b.idx,
                SessionTracker::import_state(self.cfg.mode, b.state.clone()),
            ),
            None => (0, SessionTracker::new(self.cfg.mode)),
        };
        let mut rebuilt = 0u64;
        let mut replayed = 0u64;
        for entry in &entries {
            if entry.idx < base_idx {
                continue;
            }
            // Epochs are absolute; `systems` starts at `epoch_base` (0 for
            // a fresh engine). After a recovery only the current model
            // survives, so an older-epoch entry clamps to the oldest held.
            let sys_idx =
                (entry.epoch.saturating_sub(self.epoch_base) as usize).min(self.systems.len() - 1);
            let system: &Ucad = &self.systems[sys_idx];
            // Replaying an old-epoch entry must not memoize stale scores
            // into the current cache epoch.
            let cache = if entry.epoch == self.epoch {
                self.cache.as_deref()
            } else {
                None
            };
            let live = entry.idx >= watermark;
            if live {
                replayed += 1;
            } else {
                rebuilt += 1;
            }
            let entry_observer = if live { observer.as_deref() } else { None };
            match &entry.msg {
                WalMsg::Record(record, seq) => {
                    if live {
                        shard.h.records.inc();
                    }
                    let start = Instant::now();
                    let raised = tracker.ingest(system, cache, entry_observer, record, *seq);
                    if live {
                        let score_secs = start.elapsed().as_secs_f64();
                        shard.h.score_latency.observe(score_secs);
                        shard.h.latency_score.observe(score_secs);
                        // Queue residency died with the worker's queue —
                        // replayed alerts carry no queue-wait attribution.
                        if let Some(raised) = raised {
                            book_alert(&shard.h, i, &self.flight, entry_observer, raised, 0, None);
                        }
                        if let Some(observer) = entry_observer {
                            observer.on_scored(*seq);
                        }
                    }
                }
                WalMsg::Close(session_id) => {
                    let raised = tracker.close(system, cache, entry_observer, *session_id);
                    let mut normals = tracker.take_verified_normals();
                    if live {
                        if let Some(raised) = raised {
                            book_alert(&shard.h, i, &self.flight, entry_observer, raised, 0, None);
                        }
                        if !normals.is_empty() {
                            lock(&shard.h.feedback).append(&mut normals);
                        }
                    }
                }
                WalMsg::FalseAlarm(session_id) => {
                    tracker.confirm_false_alarm(*session_id);
                    let mut normals = tracker.take_verified_normals();
                    if live && !normals.is_empty() {
                        lock(&shard.h.feedback).append(&mut normals);
                    }
                }
            }
        }
        // Everything in the log is now processed; keep only what a future
        // replay of the still-open sessions would need (plus sessions the
        // base still lists open — their closes must stay replayable).
        shard.h.processed.store(wal_top, Ordering::SeqCst);
        lock(&shard.h.wal).entries.retain(|e| {
            tracker.has_session(e.session_id)
                || base
                    .as_ref()
                    .is_some_and(|b| b.open.contains(&e.session_id))
        });
        // The dead worker's queue died with it; replay covered its
        // contents, so the fresh queue starts empty.
        shard.h.queue_depth.set(0.0);
        let spec = WorkerSpec {
            shard: i,
            system: Arc::clone(&self.system),
            cache: self.cache.clone(),
            flight: Arc::clone(&self.flight),
            observer,
        };
        *link = spawn_worker(spec, shard.h.clone(), self.cfg.queue_capacity, tracker);
        self.worker_restarts.inc();
        ucad_obs::event(
            "serve.worker_restart",
            &[
                ("shard", i.to_string()),
                ("rebuilt", rebuilt.to_string()),
                ("replayed", replayed.to_string()),
            ],
        );
        true
    }

    /// Routes one audit record to its session's shard. What happens when
    /// that shard's queue is full depends on [`ServeConfig::overload`]:
    /// `Block` waits (lossless backpressure), `ShedNewest` drops the
    /// record, `Degrade` scores it with the n-gram fallback. A dead worker
    /// is healed in place (see the module docs); the record is then
    /// accounted through replay, never lost. Alerts surface through
    /// [`ShardedOnlineUcad::drain_alerts`], not the submission path.
    ///
    /// # Panics
    /// Panics when a durable WAL append fails (injected I/O faults, disk
    /// errors) — use [`ShardedOnlineUcad::try_submit`] to handle that
    /// without panicking. In-memory engines never hit this.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_submit`; it returns the same `SubmitOutcome` but surfaces \
                durable-append failures as `Err(UcadError)` instead of panicking, \
                and it is the spelling the transport-agnostic `Admission` trait uses"
    )]
    pub fn submit(&mut self, record: &LogRecord) -> SubmitOutcome {
        self.try_submit(record)
            .expect("durable WAL append failed (use try_submit to handle I/O errors)")
    }

    /// Fallible submission: a failed durable append surfaces as `Err` and
    /// the record reaches no shard — the engine stays consistent and the
    /// caller may retry. In-memory engines never error.
    pub fn try_submit(&mut self, record: &LogRecord) -> Result<SubmitOutcome, UcadError> {
        self.try_submit_at(record, self.next_seq)
    }

    /// [`ShardedOnlineUcad::try_submit`] under a caller-assigned global
    /// arrival sequence number. This is the multi-process hook: a router
    /// that partitions one logical stream across several daemon-owned
    /// engines assigns each record its global seq and ships it with the
    /// record, so every engine tags alerts with stream-global — not
    /// engine-local — sequence numbers and the merged drain stays
    /// byte-identical to a single engine ingesting the whole stream.
    ///
    /// `seq` must normally be at least the engine's next unassigned
    /// sequence (the seqs an engine sees are a strictly increasing
    /// subsequence of the global stream). A `seq` *below* that watermark is
    /// acked as [`SubmitOutcome::Accepted`] with **no** side effect: the
    /// engine has already consumed that position, so the only legitimate
    /// sender is a router resubmitting after a lost ack — a connection died
    /// between the engine consuming the record (and, when durable, logging
    /// it) and the response reaching the client. Deduplicating here is what
    /// makes the router's reconnect-and-resubmit idempotent, and it holds
    /// across process death because recovery restores the watermark from
    /// the durable log (see [`ShardedOnlineUcad::seq_watermark`]). The
    /// sequence is consumed whatever the outcome — shed and degraded
    /// records hold their position in the global order, exactly as
    /// in-process submission does.
    pub fn try_submit_at(
        &mut self,
        record: &LogRecord,
        seq: u64,
    ) -> Result<SubmitOutcome, UcadError> {
        if seq < self.next_seq {
            // Already consumed: a resubmit of a settled position. Ack it
            // without touching any shard — processing it again would
            // duplicate the record in the WAL, the shadow feed and the
            // alert stream.
            return Ok(SubmitOutcome::Accepted);
        }
        self.next_seq = seq + 1;
        let i = self.shard_of(record.session_id);
        // Durability first: append-before-send. If the append errors the
        // record is dropped whole (no shadow feed, no in-memory log entry).
        let wal_timer = self.durable.is_some().then(Instant::now);
        self.append_durable(
            i,
            &DurableEntry::Record {
                seq,
                epoch: self.epoch,
                record: record.clone(),
            },
        )?;
        if let Some(t) = wal_timer {
            self.wal_append_latency.observe(t.elapsed().as_secs_f64());
        }
        if self.degrade.is_some() {
            // Shadow context: the fallback needs the session's full key
            // sequence even for records the real path scored.
            let key = self.system.preprocessor.vocab.key_of_sql(&record.sql);
            if let Some(state) = self.degrade.as_mut() {
                state
                    .sessions
                    .entry(record.session_id)
                    .or_default()
                    .keys
                    .push(key);
            }
        }
        let rec = Arc::new(record.clone());
        let idx = lock(&self.shards[i].h.wal).append(
            self.epoch,
            record.session_id,
            WalMsg::Record(Arc::clone(&rec), seq),
        );
        let depth = (self.shards[i].h.queue_depth.add(1.0) - 1.0).max(0.0) as usize;
        let msg = Msg::Record(rec, seq, depth, Instant::now());
        if self.cfg.overload == OverloadPolicy::Block {
            let sent = lock(&self.shards[i].link).tx.send(msg);
            if sent.is_err() {
                // Dead receiver: the std channel wakes blocked senders when
                // the worker drops its end, so a crashed shard can never
                // deadlock submission. Supervision replays the appended
                // entry — do not resend.
                self.supervise_shard(i, true);
            }
            return Ok(SubmitOutcome::Accepted);
        }
        let saturated = ucad_fault::on_submit_saturated(i);
        let refused = if saturated {
            Some(())
        } else {
            // Bind before matching: a `match lock(..).try_send(..)` scrutinee
            // would keep the link guard alive across the whole match, and the
            // Disconnected arm re-locks the link inside `supervise_shard` —
            // a self-deadlock the moment a dead worker is observed here.
            let sent = lock(&self.shards[i].link).tx.try_send(msg);
            match sent {
                Ok(()) => None,
                Err(TrySendError::Disconnected(_)) => {
                    self.supervise_shard(i, true);
                    return Ok(SubmitOutcome::Accepted);
                }
                Err(TrySendError::Full(_)) => Some(()),
            }
        };
        if refused.is_none() {
            return Ok(SubmitOutcome::Accepted);
        }
        // Saturated: the record will not reach the worker, so its log entry
        // must go too — otherwise replay would double-process everything
        // behind the resulting index gap. The durable entry cannot pop; a
        // paired Revoke marker cancels it for recovery replay instead.
        lock(&self.shards[i].h.wal).pop_unsent(idx);
        self.shards[i].h.queue_depth.add(-1.0);
        self.revoke_durable(i);
        Ok(match self.cfg.overload {
            OverloadPolicy::ShedNewest => {
                self.records_shed.inc();
                SubmitOutcome::Shed
            }
            OverloadPolicy::Degrade => self.degrade_score(i, record, seq),
            OverloadPolicy::Block => unreachable!("handled above"),
        })
    }

    /// Appends one entry to shard `i`'s durable log (a no-op for in-memory
    /// engines), maintaining the effective-operation count and the
    /// automatic-snapshot cadence.
    fn append_durable(&mut self, i: usize, entry: &DurableEntry) -> Result<(), UcadError> {
        let Some(d) = self.durable.as_mut() else {
            return Ok(());
        };
        d.shards[i].wal.append(&encode_json(entry))?;
        d.shards[i].ops += 1;
        d.appends_since_snapshot += 1;
        Ok(())
    }

    /// Cancels the just-appended durable entry of shard `i` after its send
    /// was refused (shed or degraded record). The on-disk log cannot pop,
    /// so a paired [`DurableEntry::Revoke`] is appended; replay drops the
    /// pair. If even the Revoke append fails (injected I/O faults only),
    /// the record stays durable and a later recovery would score a record
    /// the live run refused — surfaced as an event, never a panic.
    fn revoke_durable(&mut self, i: usize) {
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        match d.shards[i].wal.append(&encode_json(&DurableEntry::Revoke)) {
            Ok(_) => d.shards[i].ops = d.shards[i].ops.saturating_sub(1),
            Err(e) => ucad_obs::event(
                "serve.wal_revoke_failed",
                &[("shard", i.to_string()), ("error", e.to_string())],
            ),
        }
    }

    /// Scores a saturated-out record with the n-gram fallback, booking a
    /// `degraded: true` alert into the shard's outbox (under the record's
    /// global sequence number, so drained ordering is preserved) when the
    /// transition is abnormal and the session has not alerted degraded
    /// before. Degraded verdicts skip the flight recorder — no rank, score
    /// or key window exists for them.
    fn degrade_score(&mut self, i: usize, record: &LogRecord, seq: u64) -> SubmitOutcome {
        self.records_degraded.inc();
        let state = self.degrade.as_mut().expect("Degrade policy implies state");
        let shadow = state
            .sessions
            .get_mut(&record.session_id)
            .expect("shadow fed on every submit");
        let t = shadow.keys.len() - 1;
        let key = shadow.keys[t];
        let abnormal = !state.lm.transition_allowed(&shadow.keys[..t], key);
        let raise = abnormal && !shadow.alerted;
        if raise {
            shadow.alerted = true;
        }
        if raise {
            let alert = Alert {
                session_id: record.session_id,
                user: record.user.clone(),
                reason: if key == 0 {
                    AlertReason::UnknownStatement
                } else {
                    AlertReason::IntentMismatch
                },
                sql: Some(record.sql.clone()),
                position: Some(t),
                degraded: true,
            };
            self.shards[i].h.alerts.inc();
            ucad_obs::event(
                "serve.alert",
                &[
                    ("session_id", record.session_id.to_string()),
                    ("shard", i.to_string()),
                    ("reason", format!("{:?}", alert.reason)),
                    ("seq", seq.to_string()),
                    ("degraded", "true".to_string()),
                ],
            );
            if let Some(observer) = &self.observer {
                observer.on_alert(&alert);
            }
            lock(&self.shards[i].h.outbox).alerts.push(OutboxAlert {
                seq,
                raised_at: Some(Instant::now()),
                alert,
            });
        }
        if let Some(observer) = &self.observer {
            observer.on_scored(seq);
        }
        SubmitOutcome::Degraded
    }

    /// Appends a control message to the shard's log and sends it,
    /// supervising on a dead receiver (the entry is then consumed by
    /// replay). Control messages always block — overload policies apply to
    /// records only.
    fn send_control(&mut self, session_id: u64, wal_msg: WalMsg) {
        if let Some(state) = self.degrade.as_mut() {
            state.sessions.remove(&session_id);
        }
        let i = self.shard_of(session_id);
        let durable_entry = match &wal_msg {
            WalMsg::Close(id) => DurableEntry::Close {
                session_id: *id,
                epoch: self.epoch,
            },
            WalMsg::FalseAlarm(id) => DurableEntry::FalseAlarm {
                session_id: *id,
                epoch: self.epoch,
            },
            WalMsg::Record(..) => unreachable!("records go through submit"),
        };
        if let Err(e) = self.append_durable(i, &durable_entry) {
            // The in-memory path still applies the control, so the live run
            // stays correct; a later recovery may miss this close and
            // re-raise its alert — the drain-side delivered filter absorbs
            // the duplicate (at-least-once below the drain boundary).
            ucad_obs::event(
                "serve.wal_control_append_failed",
                &[("shard", i.to_string()), ("error", e.to_string())],
            );
        }
        lock(&self.shards[i].h.wal).append(self.epoch, session_id, wal_msg.clone());
        let depth = (self.shards[i].h.queue_depth.add(1.0) - 1.0).max(0.0) as usize;
        let msg = match wal_msg {
            WalMsg::Close(id) => Msg::Close(id, depth),
            WalMsg::FalseAlarm(id) => Msg::FalseAlarm(id),
            WalMsg::Record(..) => unreachable!("records go through submit"),
        };
        let sent = lock(&self.shards[i].link).tx.send(msg);
        if sent.is_err() {
            self.supervise_shard(i, true);
        }
    }

    /// Closes a session on its shard (Block mode scores the pending tail,
    /// which can itself raise an alert); unalerted sessions join the
    /// shard's verified-normal feedback buffer.
    pub fn close_session(&mut self, session_id: u64) {
        self.send_control(session_id, WalMsg::Close(session_id));
    }

    /// DBA feedback: the alert on `session_id` was a false alarm.
    pub fn confirm_false_alarm(&mut self, session_id: u64) {
        self.send_control(session_id, WalMsg::FalseAlarm(session_id));
    }

    /// Atomically hot-swaps the serving model, returning the new model
    /// epoch. The swap happens at a global cut in the submission order:
    ///
    /// 1. a flush barrier completes every record submitted so far against
    ///    the **old** model (healing any crashed shard under that model),
    /// 2. the shared [`ScoreCache`] advances its epoch, marking every score
    ///    memoized from the old weights stale (they are dropped on their
    ///    next lookup, never served),
    /// 3. each shard receives the new system on its FIFO queue, ahead of
    ///    anything submitted afterwards.
    ///
    /// Because `&mut self` serializes submission against the swap and the
    /// per-shard queues are FIFO, every record is scored by exactly the
    /// model that was current when it was submitted — for any shard count,
    /// and even when a shard crashes around the cut (write-ahead entries
    /// remember their epoch; replay scores them with that model). Sessions
    /// opened after the swap produce verdicts byte-identical to a freshly
    /// started engine on the new model; sessions straddling the cut finish
    /// deterministically, with positions scored under the model current at
    /// their scoring time.
    ///
    /// The candidate must share the serving vocabulary (the preprocessor's
    /// statement keys index its embedding table); a mismatched `vocab_size`
    /// is rejected with [`UcadError::InvalidConfig`] and leaves the engine
    /// untouched.
    pub fn swap_model(&mut self, model: TransDas) -> Result<u64, UcadError> {
        let serving = self.system.model.cfg.vocab_size;
        if model.cfg.vocab_size != serving {
            return Err(UcadError::invalid(
                "vocab_size",
                format!(
                    "candidate model indexes {} statement keys, the serving \
                     vocabulary has {serving}",
                    model.cfg.vocab_size
                ),
            ));
        }
        self.flush();
        if let Some(cache) = &self.cache {
            cache.advance_epoch();
        }
        let mut system = (*self.system).clone();
        system.model = model;
        let system = Arc::new(system);
        self.system = Arc::clone(&system);
        self.systems.push(Arc::clone(&system));
        self.epoch += 1;
        for i in 0..self.shards.len() {
            let sent = lock(&self.shards[i].link)
                .tx
                .send(Msg::Swap(Arc::clone(&system)));
            if sent.is_err() {
                // The respawned worker picks up the already-installed new
                // system directly; no swap message needed.
                self.supervise_shard(i, true);
            }
        }
        self.swaps.inc();
        self.epoch_gauge.set(self.epoch as f64);
        ucad_obs::event("serve.model_swap", &[("epoch", self.epoch.to_string())]);
        if self.durable.is_some() {
            let marker = encode_json(&MetaEntry::Epoch { epoch: self.epoch });
            self.durable
                .as_mut()
                .expect("checked above")
                .meta
                .append(&marker)?;
            // Snapshot at the cut: every durable entry behind it is folded
            // into state, so recovery — which only has the *current* model
            // to replay with — never rescores an old-epoch entry.
            self.snapshot()?;
        }
        Ok(self.epoch)
    }

    /// Flushes, exports every shard's live session state, and commits it as
    /// an atomic durable snapshot per shard; the logs are then truncated
    /// below the previous retained snapshot and the in-memory supervision
    /// base advances. Bounds both recovery replay length and disk usage.
    /// No-op for in-memory engines.
    pub fn snapshot(&mut self) -> Result<(), UcadError> {
        if self.durable.is_none() {
            return Ok(());
        }
        self.flush();
        for i in 0..self.shards.len() {
            self.snapshot_shard(i)?;
        }
        if let Some(d) = self.durable.as_mut() {
            d.appends_since_snapshot = 0;
        }
        Ok(())
    }

    fn snapshot_shard(&mut self, i: usize) -> Result<(), UcadError> {
        let state = self.export_tracker(i);
        let epoch = self.epoch;
        let next_seq = self.next_seq;
        let h = self.shards[i].h.clone();
        let d = self
            .durable
            .as_mut()
            .expect("snapshot_shard requires durability");
        let sd = &mut d.shards[i];
        // Everything the snapshot claims to cover must be on disk first.
        sd.wal.sync()?;
        let wal_idx = sd.wal.next_idx();
        let snap = ShardSnapshot {
            wal_idx,
            epoch,
            next_seq,
            ops: sd.ops,
            tracker: state.clone(),
            // Raise instants are process-local; the durable format keeps
            // only (seq, alert), unchanged across this refactor.
            outbox: lock(&h.outbox)
                .alerts
                .iter()
                .map(|a| (a.seq, a.alert.clone()))
                .collect(),
            feedback: lock(&h.feedback).clone(),
        };
        sd.snaps.save(wal_idx, &encode_json(&snap))?;
        // Segments wholly below the *previous* retained snapshot are
        // unreachable even if the one just written turns out damaged (the
        // store keeps two; recovery falls back to the older).
        sd.wal.truncate_below(sd.last_snap);
        sd.last_snap = wal_idx;
        // Advance the supervision base: in-memory entries below the flush
        // watermark are folded into the exported state and can be pruned.
        let in_mem_idx = lock(&h.wal).next_idx;
        let open: HashSet<u64> = state.sessions.iter().map(|s| s.session.id).collect();
        *lock(&h.base) = Some(BaseState {
            idx: in_mem_idx,
            open,
            state,
        });
        lock(&h.wal).entries.retain(|e| e.idx >= in_mem_idx);
        ucad_obs::event(
            "serve.snapshot",
            &[("shard", i.to_string()), ("wal_idx", wal_idx.to_string())],
        );
        Ok(())
    }

    /// Exports shard `i`'s live session state through a queue barrier,
    /// healing the worker (whose supervision replay rebuilds the same
    /// state) and retrying if it dies mid-export. Call after a flush so
    /// the export reflects everything submitted.
    fn export_tracker(&self, i: usize) -> TrackerState {
        loop {
            let (tx, rx) = sync_channel(1);
            let sent = lock(&self.shards[i].link).tx.send(Msg::Export(tx));
            if sent.is_ok() {
                loop {
                    match rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(state) => return state,
                        Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => {
                            let dead = lock(&self.shards[i].link)
                                .handle
                                .as_ref()
                                .is_none_or(|h| h.is_finished());
                            if dead {
                                break;
                            }
                        }
                    }
                }
            }
            // Dead worker: heal it and retry (fault plans are finite).
            self.supervise_shard(i, true);
        }
    }

    /// The model epoch currently serving: 0 until the first
    /// [`ShardedOnlineUcad::swap_model`], +1 per swap.
    pub fn model_epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine's sequence watermark: the next global arrival sequence it
    /// has not yet consumed. Every submission at a sequence **below** this
    /// is already settled — [`ShardedOnlineUcad::try_submit_at`] acks such
    /// resubmits without re-processing, which is what lets a router replay
    /// unacknowledged submits after a reconnect. Durable recovery restores
    /// the watermark from the log (replayed records and drain markers), so
    /// the dedupe discipline survives process death.
    pub fn seq_watermark(&self) -> u64 {
        self.next_seq
    }

    /// Effective durable operations per shard (records, closes and
    /// false-alarm confirmations; revoked entries excluded), over the
    /// directory's whole lifetime — `None` for in-memory engines. After a
    /// recovery, a driver replaying its deterministic submission script can
    /// skip, per shard, exactly this many of the shard's operations: what
    /// remains is the crash-free continuation.
    pub fn durable_ops_per_shard(&self) -> Option<Vec<u64>> {
        self.durable
            .as_ref()
            .map(|d| d.shards.iter().map(|s| s.ops).collect())
    }

    /// Drops the engine the way a process crash would: no shutdown
    /// message, no flush, no final fsync — worker threads and file handles
    /// are leaked outright. Exists for crash-recovery tests, where `Drop`'s
    /// graceful shutdown would defeat the point; pair with
    /// [`ShardedOnlineUcad::recover`] on the same directory.
    pub fn abandon(self) {
        std::mem::forget(self);
    }

    /// Flushes, then hands over (and clears) every shard's verified-normal
    /// feedback buffer — the §5.2 retraining corpus — without stopping the
    /// engine. Sessions appear in close order within a shard, shards in
    /// index order.
    pub fn drain_feedback(&mut self) -> Vec<Vec<u32>> {
        self.flush();
        let mut sessions = Vec::new();
        for shard in &self.shards {
            sessions.append(&mut lock(&shard.h.feedback));
        }
        sessions
    }

    /// Barrier: returns once every message submitted so far has been fully
    /// processed by its shard — healing dead workers along the way. The
    /// pass repeats until a whole round completes with no restart and no
    /// failed barrier, so a worker dying *during* the flush (e.g. an
    /// injected panic on a still-queued record) is also healed before the
    /// call returns; fault plans are finite, so the loop terminates.
    pub fn flush(&self) {
        loop {
            let mut stable = true;
            for i in 0..self.shards.len() {
                if self.supervise_shard(i, false) {
                    stable = false;
                }
            }
            let acks: Vec<Option<Receiver<()>>> = self
                .shards
                .iter()
                .map(|shard| {
                    let (ack_tx, ack_rx) = sync_channel(1);
                    lock(&shard.link)
                        .tx
                        .send(Msg::Flush(ack_tx))
                        .ok()
                        .map(|()| ack_rx)
                })
                .collect();
            for (i, ack) in acks.into_iter().enumerate() {
                let acked = match ack {
                    Some(rx) => self.await_ack(i, rx),
                    None => false,
                };
                if !acked {
                    stable = false;
                }
            }
            if stable {
                return;
            }
        }
    }

    /// Waits for one shard's flush ack. A plain `recv()` here can park
    /// forever: if the worker dies *after* the barrier was queued, its
    /// receiver drops but the engine still holds the queue's sender, so the
    /// buffered `Flush` message — and the ack sender inside it — is never
    /// destroyed. The wait therefore re-checks worker liveness on a short
    /// timeout; a dead worker fails the ack, and the flush loop supervises
    /// and retries.
    fn await_ack(&self, i: usize, rx: Receiver<()>) -> bool {
        loop {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(()) => return true,
                Err(RecvTimeoutError::Disconnected) => return false,
                Err(RecvTimeoutError::Timeout) => {
                    let dead = lock(&self.shards[i].link)
                        .handle
                        .as_ref()
                        .is_none_or(|h| h.is_finished());
                    if dead {
                        return false;
                    }
                }
            }
        }
    }

    /// Flushes, then returns every alert raised since the last drain,
    /// ordered by the arrival sequence of the triggering record — including
    /// alerts a supervision replay re-raised on behalf of a crashed worker,
    /// which keep the sequence number of their original trigger. Given the
    /// same submission sequence, the returned list is byte-identical for
    /// any shard count — with the default Streaming mode it equals what
    /// [`crate::OnlineUcad::alerts`] accumulates.
    /// For durable engines the drain boundary is also the exactly-once
    /// boundary: recovery replay re-raises any alert whose delivery was
    /// never recorded, and this method filters out every alert sequence a
    /// previously recorded drain already delivered, then durably records
    /// the new deliveries — so the concatenation of drained streams across
    /// crashes equals the crash-free stream exactly.
    pub fn drain_alerts(&mut self) -> Vec<Alert> {
        self.drain_alerts_seq()
            .into_iter()
            .map(|(_, alert)| alert)
            .collect()
    }

    /// [`ShardedOnlineUcad::drain_alerts`] with each alert's global arrival
    /// sequence attached. This is what a network daemon ships to its
    /// router: the seqs let per-daemon drains be re-merged
    /// ([`crate::admission::merge_seq_sorted`] — the *same* helper this
    /// method merges per-shard outboxes with) into the stream a single
    /// engine would have produced.
    pub fn drain_alerts_seq(&mut self) -> Vec<(u64, Alert)> {
        self.flush();
        // Per-shard outboxes merge through the shared seq-sort helper —
        // the identical code path the cross-process router uses, so the
        // two scales cannot drift apart.
        let mut tagged: Vec<OutboxAlert> = merge_seq_sorted(
            self.shards
                .iter()
                .map(|shard| std::mem::take(&mut lock(&shard.h.outbox).alerts)),
            |a| a.seq,
        );
        // Drain-delay attribution: one clock read covers the whole batch
        // (the per-alert variation is the raise instant, not the drain).
        // Alerts without a raise instant (restored from a durable snapshot)
        // are skipped — their delay spans a process death.
        let now = Instant::now();
        let mut delays: HashMap<u64, f64> = HashMap::new();
        for a in &tagged {
            if let Some(raised_at) = a.raised_at {
                let secs = now.saturating_duration_since(raised_at).as_secs_f64();
                self.drain_delay_latency.observe(secs);
                delays.insert(a.seq, secs * 1e6);
            }
        }
        self.flight.annotate_drain_delays(&delays);
        let mut want_snapshot = false;
        if let Some(d) = self.durable.as_mut() {
            tagged.retain(|a| !d.delivered.contains(&a.seq));
            if !tagged.is_empty() {
                let newly: Vec<u64> = tagged.iter().map(|a| a.seq).collect();
                let marker = MetaEntry::Drain {
                    next_seq: self.next_seq,
                    delivered: newly.clone(),
                };
                match d.meta.append(&encode_json(&marker)) {
                    Ok(_) => d.delivered.extend(newly),
                    // Marker lost: these alerts stay unrecorded and a crash
                    // re-delivers them — at-least-once, never silently lost.
                    Err(e) => ucad_obs::event(
                        "serve.wal_drain_marker_failed",
                        &[("error", e.to_string())],
                    ),
                }
            }
            want_snapshot =
                d.cfg.snapshot_every > 0 && d.appends_since_snapshot >= d.cfg.snapshot_every;
        }
        if want_snapshot {
            if let Err(e) = self.snapshot() {
                ucad_obs::event("serve.snapshot_failed", &[("error", e.to_string())]);
            }
        }
        tagged.into_iter().map(|a| (a.seq, a.alert)).collect()
    }

    /// Flushes, then snapshots the throughput, overload and cache counters
    /// — a view over the same registry cells
    /// [`ShardedOnlineUcad::render_metrics`] exposes, readable through
    /// `&self` (the handles are atomics).
    pub fn stats(&self) -> ServeStats {
        self.flush();
        ServeStats {
            records_per_shard: self.shards.iter().map(|s| s.h.records.get()).collect(),
            pending_alerts: self
                .shards
                .iter()
                .map(|s| lock(&s.h.outbox).alerts.len())
                .sum(),
            cache: self.cache.as_ref().map(|c| c.stats()),
            records_shed: self.records_shed.get(),
            records_degraded: self.records_degraded.get(),
            worker_restarts: self.worker_restarts.get(),
        }
    }

    /// The engine's metrics registry (serve shards, score cache, flight
    /// recorder).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Prometheus text exposition of the engine registry.
    pub fn render_metrics(&self) -> String {
        self.registry.render_prometheus()
    }

    /// The flight recorder's resident per-alert diagnostics, oldest first.
    pub fn flight_entries(&self) -> Vec<FlightEntry> {
        self.flight.entries()
    }

    /// The flight recorder's resident entries as a JSON array.
    pub fn dump_flight_json(&self) -> String {
        self.flight.dump_json()
    }

    /// Sends a panic to a shard's worker (exercises the supervision and
    /// shutdown panic-capture paths).
    #[cfg(test)]
    fn inject_worker_panic(&self, shard: usize) {
        let _ = lock(&self.shards[shard].link).tx.send(Msg::Panic);
    }

    /// Stops the workers and hands back the system, the remaining alerts,
    /// the accumulated verified-normal feedback, any worker panics, and the
    /// flight recorder's entries. A panicked worker is reported in
    /// [`ShutdownReport::worker_panics`] (and counted on
    /// `ucad_serve_worker_panics_total`) instead of propagating the panic;
    /// panics already healed by mid-run supervision appear there too.
    pub fn shutdown(mut self) -> ShutdownReport {
        let alerts = self.drain_alerts();
        // Graceful exit: force the batched per-shard log tails to disk so a
        // restart from this directory replays everything.
        if let Some(d) = self.durable.as_mut() {
            for sd in &mut d.shards {
                let _ = sd.wal.sync();
            }
        }
        let mut verified_normals = Vec::new();
        for shard in &self.shards {
            verified_normals.append(&mut lock(&shard.h.feedback));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let mut link = lock(&shard.link);
            let _ = link.tx.send(Msg::Shutdown);
            if let Some(handle) = link.handle.take() {
                if let Err(panic) = handle.join() {
                    self.record_panic(i, panic);
                }
            }
        }
        let worker_panics = std::mem::take(&mut *lock(&self.panic_log));
        let worker_restarts = self.worker_restarts.get();
        let flight = self.flight.entries();
        self.cache = None;
        self.shards.clear();
        let system_arc = Arc::clone(&self.system);
        self.systems.clear();
        drop(self);
        let system = Arc::try_unwrap(system_arc).unwrap_or_else(|arc| (*arc).clone());
        ShutdownReport {
            system,
            alerts,
            verified_normals,
            worker_panics,
            worker_restarts,
            flight,
        }
    }
}

impl Drop for ShardedOnlineUcad {
    fn drop(&mut self) {
        // Dropping the senders ends each worker's recv loop; detach rather
        // than join so a panicking test does not deadlock on its own shards.
        for shard in &mut self.shards {
            let _ = lock(&shard.link).tx.send(Msg::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucad_baselines::BaselineDetector;

    #[test]
    fn splitmix_routes_uniformly_and_deterministically() {
        let counts = |seed: u64, shards: u64| {
            let mut c = vec![0usize; shards as usize];
            for id in 0..10_000u64 {
                c[(splitmix64(seed ^ id) % shards) as usize] += 1;
            }
            c
        };
        let a = counts(7, 8);
        let b = counts(7, 8);
        assert_eq!(a, b, "assignment must be a pure function of the seed");
        for (i, n) in a.iter().enumerate() {
            assert!(
                (1000..1500).contains(n),
                "shard {i} holds {n}/10000 sessions; routing is skewed"
            );
        }
        // Per-shard counts can coincide across seeds (xor by a constant is a
        // bijection), so compare the per-session assignment map instead.
        let map =
            |seed: u64| -> Vec<u64> { (0..100u64).map(|id| splitmix64(seed ^ id) % 8).collect() };
        assert_ne!(map(7), map(8), "seed must matter");
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.shards >= 1);
        assert!(cfg.queue_capacity >= 1);
        assert_eq!(cfg.mode, DetectionMode::Streaming);
        assert!(cfg.flight_capacity >= 1);
        assert_eq!(cfg.overload, OverloadPolicy::Block);
    }

    #[test]
    fn builder_roundtrips_and_rejects_degenerate_configs() {
        let cfg = ServeConfig::builder()
            .shards(2)
            .queue_capacity(64)
            .cache_capacity(0)
            .mode(DetectionMode::Block)
            .seed(7)
            .flight_capacity(0)
            .overload(OverloadPolicy::ShedNewest)
            .build()
            .expect("valid config rejected");
        assert_eq!((cfg.shards, cfg.queue_capacity), (2, 64));
        assert_eq!((cfg.cache_capacity, cfg.flight_capacity), (0, 0));
        assert_eq!(cfg.mode, DetectionMode::Block);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.overload, OverloadPolicy::ShedNewest);
        assert!(ServeConfig::builder().shards(0).build().is_err());
        assert!(ServeConfig::builder().queue_capacity(0).build().is_err());
    }

    fn tiny_system(seed: u64) -> Ucad {
        use crate::system::UcadConfig;
        use ucad_model::TransDasConfig;
        use ucad_trace::{generate_raw_log, ScenarioSpec};

        let raw = generate_raw_log(&ScenarioSpec::commenting(), 30, 0.0, seed);
        let mut cfg = UcadConfig::scenario1();
        cfg.model = TransDasConfig {
            hidden: 8,
            heads: 2,
            blocks: 1,
            window: 8,
            epochs: 1,
            ..cfg.model
        };
        Ucad::train(&raw.sessions, cfg).0
    }

    fn records_of(system: &Ucad, seed: u64, sessions: usize) -> Vec<LogRecord> {
        use rand::SeedableRng;
        use ucad_trace::{ScenarioSpec, SessionGenerator};

        let _ = system;
        let mut gen = SessionGenerator::new(ScenarioSpec::commenting());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut records = Vec::new();
        for _ in 0..sessions {
            let s = gen.normal_session(&mut rng).session;
            for op in &s.ops {
                records.push(LogRecord {
                    timestamp: op.timestamp,
                    user: s.user.clone(),
                    client_ip: s.client_ip.clone(),
                    session_id: s.id,
                    sql: op.sql.clone(),
                    table: op.table.clone(),
                    op: op.kind,
                    rows: 0,
                });
            }
        }
        records
    }

    #[test]
    fn resubmit_below_the_watermark_is_acked_without_reprocessing() {
        let system = tiny_system(11);
        let records = records_of(&system, 12, 2);
        let mut engine = ShardedOnlineUcad::new(
            system,
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        );
        assert_eq!(engine.seq_watermark(), 0);
        assert_eq!(
            engine.try_submit_at(&records[0], 4),
            Ok(SubmitOutcome::Accepted)
        );
        assert_eq!(engine.seq_watermark(), 5, "gaps are fine; rewinds are not");
        // A resubmit of any settled position acks as already accepted and
        // reaches no shard: the record count must not move.
        assert_eq!(
            engine.try_submit_at(&records[1], 3),
            Ok(SubmitOutcome::Accepted)
        );
        assert_eq!(
            engine.try_submit_at(&records[0], 4),
            Ok(SubmitOutcome::Accepted)
        );
        assert_eq!(engine.seq_watermark(), 5, "dup-acks must not advance");
        assert_eq!(
            engine.try_submit_at(&records[1], 5),
            Ok(SubmitOutcome::Accepted)
        );
        engine.flush();
        assert_eq!(engine.stats().records(), 2, "dup-acks reached no shard");
        drop(engine.shutdown());
    }

    #[test]
    fn shutdown_reports_worker_panics_instead_of_propagating() {
        let system = tiny_system(9);
        let engine = ShardedOnlineUcad::new(
            system,
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        );
        engine.inject_worker_panic(0);
        let metrics_before = engine.render_metrics();
        assert!(metrics_before.contains("ucad_serve_worker_panics_total 0"));
        let report = engine.shutdown();
        assert_eq!(report.worker_panics.len(), 1);
        assert_eq!(report.worker_panics[0].0, 0);
        assert!(
            report.worker_panics[0].1.contains("injected worker panic"),
            "panic message lost: {:?}",
            report.worker_panics[0].1
        );
        assert!(report.alerts.is_empty());
    }

    #[test]
    fn dead_shard_is_healed_and_keeps_accepting_without_deadlock() {
        let system = tiny_system(17);
        let records = records_of(&system, 18, 6);
        let mut engine = ShardedOnlineUcad::new(
            system,
            ServeConfig {
                shards: 1,
                queue_capacity: 4,
                ..ServeConfig::default()
            },
        );
        let mid = records.len() / 2;
        for r in &records[..mid] {
            assert_eq!(engine.try_submit(r), Ok(SubmitOutcome::Accepted));
        }
        engine.inject_worker_panic(0);
        // Keep submitting well past the queue bound: the dead receiver must
        // fail sends fast (never deadlock), supervision must heal the shard
        // and replay everything the crash ate.
        for r in &records[mid..] {
            assert_eq!(engine.try_submit(r), Ok(SubmitOutcome::Accepted));
        }
        let stats = engine.stats();
        assert_eq!(stats.records(), records.len() as u64);
        assert!(stats.worker_restarts >= 1);
        let report = engine.shutdown();
        assert_eq!(report.worker_restarts, stats.worker_restarts);
        assert_eq!(report.worker_panics.len(), 1);
    }

    #[test]
    fn shed_policy_drops_under_forced_saturation_and_reconciles() {
        let system = tiny_system(21);
        let records = records_of(&system, 22, 3);
        let mut engine = ShardedOnlineUcad::new(
            system,
            ServeConfig {
                shards: 1,
                overload: OverloadPolicy::ShedNewest,
                ..ServeConfig::default()
            },
        );
        // Force saturation on submissions 2 and 3 (0-based) of shard 0.
        let _armed = ucad_fault::FaultPlan::new().saturate(2, 4, Some(0)).arm();
        let mut shed = 0u64;
        for r in &records {
            if engine.try_submit(r) == Ok(SubmitOutcome::Shed) {
                shed += 1;
            }
        }
        assert_eq!(shed, 2);
        let stats = engine.stats();
        assert_eq!(stats.records_shed, 2);
        assert_eq!(stats.records() + stats.records_shed, records.len() as u64);
        let metrics = engine.render_metrics();
        assert!(metrics.contains("ucad_serve_records_shed_total 2"));
    }

    #[test]
    fn degrade_policy_requires_fitted_fallback() {
        let system = tiny_system(23);
        let cfg = ServeConfig {
            overload: OverloadPolicy::Degrade,
            ..ServeConfig::default()
        };
        assert!(ShardedOnlineUcad::try_new_full(system.clone(), cfg, None, None).is_err());
        assert!(ShardedOnlineUcad::try_new_full(
            system.clone(),
            cfg,
            None,
            Some(NgramLm::new(3, 4))
        )
        .is_err());
        let mut lm = NgramLm::new(3, 4);
        lm.fit(&[vec![1, 2, 3]], system.model.cfg.vocab_size);
        assert!(ShardedOnlineUcad::try_new_full(system, cfg, None, Some(lm)).is_ok());
    }

    #[test]
    fn swap_validates_vocab_and_bumps_epoch_and_metrics() {
        let system = tiny_system(11);
        let mut bad_cfg = system.model.cfg;
        bad_cfg.vocab_size += 3;
        let mut engine = ShardedOnlineUcad::new(
            system,
            ServeConfig {
                shards: 3,
                ..ServeConfig::default()
            },
        );
        assert_eq!(engine.model_epoch(), 0);
        let err = engine
            .swap_model(TransDas::new(bad_cfg))
            .expect_err("vocab mismatch must be rejected");
        assert!(matches!(
            err,
            UcadError::InvalidConfig {
                field: "vocab_size",
                ..
            }
        ));
        assert_eq!(engine.model_epoch(), 0, "rejected swap must not advance");

        let candidate = engine.system().model.clone();
        assert_eq!(engine.swap_model(candidate).expect("compatible swap"), 1);
        assert_eq!(engine.model_epoch(), 1);
        let metrics = engine.render_metrics();
        assert!(metrics.contains("ucad_serve_swaps_total 1"));
        assert!(metrics.contains("ucad_serve_model_epoch 1"));
        // The shared score memo was invalidated at the cut.
        assert!(metrics.contains("ucad_cache_stale_drops_total 0"));
        engine.flush();
    }

    #[test]
    fn drain_feedback_collects_unalerted_sessions_without_stopping() {
        use rand::SeedableRng;
        use ucad_trace::{ScenarioSpec, SessionGenerator};

        let system = tiny_system(13);
        let mut engine = ShardedOnlineUcad::new(
            system,
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        );
        let mut gen = SessionGenerator::new(ScenarioSpec::commenting());
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let mut submitted = 0;
        for _ in 0..4 {
            let s = gen.normal_session(&mut rng).session;
            for op in &s.ops {
                let _ = engine.try_submit(&LogRecord {
                    timestamp: op.timestamp,
                    user: s.user.clone(),
                    client_ip: s.client_ip.clone(),
                    session_id: s.id,
                    sql: op.sql.clone(),
                    table: op.table.clone(),
                    op: op.kind,
                    rows: 0,
                });
            }
            engine.close_session(s.id);
            submitted += 1;
        }
        let alerted: std::collections::HashSet<u64> =
            engine.drain_alerts().iter().map(|a| a.session_id).collect();
        let feedback = engine.drain_feedback();
        assert_eq!(feedback.len(), submitted - alerted.len());
        assert!(
            engine.drain_feedback().is_empty(),
            "drain must clear the buffers"
        );
        // The engine keeps serving after a drain.
        engine.flush();
        let report = engine.shutdown();
        assert!(report.verified_normals.is_empty());
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ucad-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Resumes `records` on a freshly recovered engine, skipping the prefix
    /// each shard already holds durably — the same protocol a restarted
    /// ingest process follows after `recover`.
    fn resume_records(engine: &mut ShardedOnlineUcad, records: &[LogRecord]) {
        let mut skip = engine.durable_ops_per_shard().expect("durable engine");
        for r in records {
            let shard = engine.shard_of(r.session_id);
            if skip[shard] > 0 {
                skip[shard] -= 1;
                continue;
            }
            assert_eq!(engine.try_submit(r), Ok(SubmitOutcome::Accepted));
        }
    }

    #[test]
    fn durable_abandon_recover_matches_crash_free_run() {
        let dir = tmp_dir("recover");
        let system = tiny_system(31);
        let cfg = ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        };
        let mut records = records_of(&system, 32, 6);
        // Unknown statements alert deterministically regardless of model
        // weights; sprinkle a few so the comparison below is non-vacuous.
        let step = records.len() / 3;
        for (i, r) in records.iter_mut().enumerate() {
            if i % step == step / 2 {
                r.sql = format!("DELETE FROM t_shadow WHERE id={i}");
            }
        }
        let sessions: Vec<u64> = {
            let mut ids: Vec<u64> = records.iter().map(|r| r.session_id).collect();
            ids.dedup();
            ids
        };

        // Crash-free baseline: plain in-memory engine, identical config.
        let mut baseline = ShardedOnlineUcad::new(system.clone(), cfg);
        for r in &records {
            assert_eq!(baseline.try_submit(r), Ok(SubmitOutcome::Accepted));
        }
        for &id in &sessions {
            baseline.close_session(id);
        }
        baseline.flush();
        let mut expected = baseline.drain_alerts();
        assert!(!expected.is_empty(), "scenario must raise alerts");

        // Durable run: snapshot a third in, "crash" (abandon skips the
        // shutdown handshake entirely) two thirds in.
        let mut engine = ShardedOnlineUcad::try_new_durable(
            system.clone(),
            cfg,
            None,
            None,
            DurabilityConfig::new(&dir),
        )
        .expect("fresh durable engine");
        let cut = 2 * records.len() / 3;
        for (i, r) in records[..cut].iter().enumerate() {
            assert_eq!(engine.try_submit(r), Ok(SubmitOutcome::Accepted));
            if i == records.len() / 3 {
                engine.snapshot().expect("snapshot");
            }
        }
        engine.abandon();

        let mut engine =
            ShardedOnlineUcad::recover(system, cfg, DurabilityConfig::new(&dir)).expect("recovery");
        resume_records(&mut engine, &records);
        for &id in &sessions {
            engine.close_session(id);
        }
        engine.flush();
        let mut got = engine.drain_alerts();

        // A session alerts at most once, so session_id is a total order.
        expected.sort_by_key(|a| a.session_id);
        got.sort_by_key(|a| a.session_id);
        assert_eq!(
            got, expected,
            "recovered alert stream must match the crash-free run"
        );
        let metrics = engine.render_metrics();
        assert!(metrics.contains("ucad_serve_recoveries_total 1"));
        assert!(metrics.contains("ucad_wal_replayed_records_total"));
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression for the latent drain-boundary duplicate: recovery replay
    /// re-raises every alert it scores, including ones already handed to the
    /// operator before the crash. The drain marker plus seq dedup make the
    /// drained stream exactly-once.
    #[test]
    fn drain_boundary_is_exactly_once_across_recovery() {
        let dir = tmp_dir("drain-once");
        let system = tiny_system(37);
        let cfg = ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        };
        let mut records = records_of(&system, 38, 4);
        // Inject unknown statements mid-session (early positions are still
        // inside the scoring window and would not be verdicted yet): one in
        // the first session, one in the last.
        let first_id = records[0].session_id;
        let early = records.iter().filter(|r| r.session_id == first_id).count() / 2;
        records[early].sql = "DELETE FROM t_shadow WHERE id=1".into();
        let last_id = records.last().expect("records").session_id;
        let last_start = records
            .iter()
            .position(|r| r.session_id == last_id)
            .expect("last session");
        let late = last_start + (records.len() - last_start) / 2;
        records[late].sql = "DELETE FROM t_shadow WHERE id=2".into();
        let cut = records.len() / 2;
        assert!(early < cut && cut <= last_start);
        assert_ne!(
            records[early].session_id, records[late].session_id,
            "the two injected anomalies must hit different sessions"
        );

        let mut engine = ShardedOnlineUcad::try_new_durable(
            system.clone(),
            cfg,
            None,
            None,
            DurabilityConfig::new(&dir),
        )
        .expect("fresh durable engine");
        for r in &records[..cut] {
            assert_eq!(engine.try_submit(r), Ok(SubmitOutcome::Accepted));
        }
        engine.flush();
        let first = engine.drain_alerts();
        assert!(
            first
                .iter()
                .any(|a| a.session_id == records[early].session_id),
            "unknown statement must alert before the crash"
        );
        engine.abandon();

        let mut engine =
            ShardedOnlineUcad::recover(system, cfg, DurabilityConfig::new(&dir)).expect("recovery");
        assert!(
            engine.drain_alerts().is_empty(),
            "alerts drained before the crash must not be re-delivered"
        );
        resume_records(&mut engine, &records);
        engine.flush();
        let second = engine.drain_alerts();
        assert!(
            second
                .iter()
                .any(|a| a.session_id == records[late].session_id),
            "post-recovery anomalies must still alert"
        );
        assert!(
            second
                .iter()
                .all(|a| a.session_id != records[early].session_id),
            "pre-crash alerts must appear exactly once across the restart"
        );
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_rejects_mismatched_routing() {
        let dir = tmp_dir("mismatch");
        let system = tiny_system(41);
        let engine = ShardedOnlineUcad::try_new_durable(
            system.clone(),
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
            None,
            None,
            DurabilityConfig::new(&dir),
        )
        .expect("fresh durable engine");
        engine.shutdown();
        match ShardedOnlineUcad::recover(
            system,
            ServeConfig {
                shards: 3,
                ..ServeConfig::default()
            },
            DurabilityConfig::new(&dir),
        ) {
            Err(UcadError::InvalidConfig {
                field: "durability",
                ..
            }) => {}
            Err(other) => panic!("wrong error for shard mismatch: {other}"),
            Ok(_) => panic!("shard count mismatch must be rejected"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
