//! Sharded online detection service: the ROADMAP's "heavy traffic" serving
//! layer around [`OnlineUcad`]'s single-threaded deployment loop.
//!
//! Records are routed by a seeded hash of their `session_id` onto `N`
//! shards, each a worker `std::thread` owning one session partition (a
//! [`SessionTracker`], the same engine [`OnlineUcad`] runs on) behind a
//! bounded queue. Because sessions are partitioned — never split across
//! shards — and every scoring discipline is a pure function of a session's
//! own record sequence, the alert *set* is independent of the shard count
//! and of worker timing. Ordering is restored at drain time: every record
//! carries a global arrival sequence number, an alert inherits the sequence
//! number of the record that triggered it, and [`ShardedOnlineUcad::
//! drain_alerts`] flushes all queues and sorts by that number. The result:
//! N-shard output is byte-identical to the single-threaded path.
//!
//! Two levers trade latency for throughput:
//!
//! * **Batched scoring** ([`DetectionMode::Block`]): instead of one forward
//!   pass per operation, a shard defers scoring until a full model window of
//!   positions has arrived and scores the whole window in one pass (~`L`x
//!   fewer forwards); session close scores the tail. Streaming mode keeps
//!   the paper-exact per-operation rule and matches [`OnlineUcad`] alert for
//!   alert.
//! * **Score memoization** ([`ScoreCache`]): a shared LRU keyed by the exact
//!   padded key window. Production sessions draw from 1–2 workflows, so
//!   windows recur across sessions and shards; a hit skips the forward pass
//!   entirely and is bit-identical to computing it.
//!
//! [`OnlineUcad`]: crate::online::OnlineUcad
//! [`SessionTracker`]: crate::online::SessionTracker

use crate::online::{Alert, SessionTracker};
use crate::system::Ucad;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use ucad_dbsim::LogRecord;
use ucad_model::{CacheStats, DetectionMode, ScoreCache};

/// Configuration of the sharded serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of worker shards (>= 1).
    pub shards: usize,
    /// Bound of each shard's record queue; submission blocks when the
    /// owning shard is this far behind (backpressure).
    pub queue_capacity: usize,
    /// Capacity of the shared score memo in windows; 0 disables caching.
    pub cache_capacity: usize,
    /// Scoring discipline. `Streaming` is paper-exact and alert-for-alert
    /// identical to [`crate::OnlineUcad`]; `Block` batches scoring into
    /// one forward pass per model window.
    pub mode: DetectionMode,
    /// Seed of the session-to-shard hash, so shard assignment (and with it
    /// queue interleaving) is reproducible run to run.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 1024,
            cache_capacity: 256,
            mode: DetectionMode::Streaming,
            seed: 0x5EED,
        }
    }
}

/// Counter snapshot of a running engine.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Records accepted per shard (indexed by shard id).
    pub records_per_shard: Vec<u64>,
    /// Alerts currently buffered, awaiting [`ShardedOnlineUcad::drain_alerts`].
    pub pending_alerts: usize,
    /// Score-memo counters; `None` when caching is disabled.
    pub cache: Option<CacheStats>,
}

impl ServeStats {
    /// Total records accepted across shards.
    pub fn records(&self) -> u64 {
        self.records_per_shard.iter().sum()
    }
}

/// Everything handed back when the engine shuts down.
pub struct ShutdownReport {
    /// The wrapped system (for persistence or fine-tuning).
    pub system: Ucad,
    /// Alerts raised since the last drain, in arrival order.
    pub alerts: Vec<Alert>,
    /// Verified-normal sessions accumulated by the workers' feedback
    /// buffers (grouped by shard), ready for the next fine-tuning round.
    pub verified_normals: Vec<Vec<u32>>,
}

enum Msg {
    Record(Box<LogRecord>, u64),
    Close(u64),
    FalseAlarm(u64),
    /// Barrier: every message sent before this one has been processed once
    /// the acknowledgement arrives (per-shard queues are FIFO).
    Flush(SyncSender<()>),
    Shutdown,
}

#[derive(Default)]
struct Outbox {
    alerts: Vec<(u64, Alert)>,
}

struct Shard {
    tx: SyncSender<Msg>,
    outbox: Arc<Mutex<Outbox>>,
    records: Arc<AtomicU64>,
    handle: Option<JoinHandle<SessionTracker>>,
}

/// SplitMix64 finalizer: a cheap, well-mixed hash for shard routing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn worker(
    rx: Receiver<Msg>,
    system: Arc<Ucad>,
    cache: Option<Arc<ScoreCache>>,
    outbox: Arc<Mutex<Outbox>>,
    records: Arc<AtomicU64>,
    mode: DetectionMode,
) -> SessionTracker {
    let mut tracker = SessionTracker::new(mode);
    let cache = cache.as_deref();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Record(record, seq) => {
                records.fetch_add(1, Ordering::Relaxed);
                if let Some(alert) = tracker.ingest(&system, cache, &record, seq) {
                    outbox.lock().expect("outbox poisoned").alerts.push(alert);
                }
            }
            Msg::Close(session_id) => {
                if let Some(alert) = tracker.close(&system, cache, session_id) {
                    outbox.lock().expect("outbox poisoned").alerts.push(alert);
                }
            }
            Msg::FalseAlarm(session_id) => tracker.confirm_false_alarm(session_id),
            Msg::Flush(ack) => {
                let _ = ack.send(());
            }
            Msg::Shutdown => break,
        }
    }
    tracker
}

/// The sharded, memoizing serving engine. See the module docs for the
/// architecture and the determinism guarantee.
pub struct ShardedOnlineUcad {
    system: Arc<Ucad>,
    cache: Option<Arc<ScoreCache>>,
    shards: Vec<Shard>,
    cfg: ServeConfig,
    next_seq: u64,
}

impl ShardedOnlineUcad {
    /// Wraps a trained system and spawns the worker shards.
    ///
    /// # Panics
    /// Panics when `cfg.shards` is zero.
    pub fn new(system: Ucad, cfg: ServeConfig) -> Self {
        assert!(cfg.shards >= 1, "at least one shard required");
        let system = Arc::new(system);
        let cache = (cfg.cache_capacity > 0).then(|| Arc::new(ScoreCache::new(cfg.cache_capacity)));
        let shards = (0..cfg.shards)
            .map(|_| {
                let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
                let outbox = Arc::new(Mutex::new(Outbox::default()));
                let records = Arc::new(AtomicU64::new(0));
                let handle = {
                    let system = Arc::clone(&system);
                    let cache = cache.clone();
                    let outbox = Arc::clone(&outbox);
                    let records = Arc::clone(&records);
                    std::thread::spawn(move || worker(rx, system, cache, outbox, records, cfg.mode))
                };
                Shard {
                    tx,
                    outbox,
                    records,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardedOnlineUcad {
            system,
            cache,
            shards,
            cfg,
            next_seq: 0,
        }
    }

    /// Read access to the wrapped system.
    pub fn system(&self) -> &Ucad {
        &self.system
    }

    /// The shard a session routes to.
    pub fn shard_of(&self, session_id: u64) -> usize {
        (splitmix64(self.cfg.seed ^ session_id) % self.cfg.shards as u64) as usize
    }

    fn send(&self, session_id: u64, msg: Msg) {
        let shard = &self.shards[self.shard_of(session_id)];
        shard.tx.send(msg).expect("serving shard terminated");
    }

    /// Routes one audit record to its session's shard, blocking when that
    /// shard's queue is full. Alerts surface through
    /// [`ShardedOnlineUcad::drain_alerts`], not the submission path.
    pub fn submit(&mut self, record: &LogRecord) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send(
            record.session_id,
            Msg::Record(Box::new(record.clone()), seq),
        );
    }

    /// Closes a session on its shard (Block mode scores the pending tail,
    /// which can itself raise an alert); unalerted sessions join the
    /// shard's verified-normal feedback buffer.
    pub fn close_session(&mut self, session_id: u64) {
        self.send(session_id, Msg::Close(session_id));
    }

    /// DBA feedback: the alert on `session_id` was a false alarm.
    pub fn confirm_false_alarm(&mut self, session_id: u64) {
        self.send(session_id, Msg::FalseAlarm(session_id));
    }

    /// Barrier: returns once every record submitted so far has been fully
    /// processed by its shard.
    pub fn flush(&mut self) {
        let acks: Vec<Receiver<()>> = self
            .shards
            .iter()
            .map(|shard| {
                let (ack_tx, ack_rx) = sync_channel(1);
                shard
                    .tx
                    .send(Msg::Flush(ack_tx))
                    .expect("serving shard terminated");
                ack_rx
            })
            .collect();
        for ack in acks {
            ack.recv().expect("serving shard terminated");
        }
    }

    /// Flushes, then returns every alert raised since the last drain,
    /// ordered by the arrival sequence of the triggering record. Given the
    /// same submission sequence, the returned list is byte-identical for
    /// any shard count — with the default Streaming mode it equals what
    /// [`crate::OnlineUcad::alerts`] accumulates.
    pub fn drain_alerts(&mut self) -> Vec<Alert> {
        self.flush();
        let mut tagged: Vec<(u64, Alert)> = Vec::new();
        for shard in &self.shards {
            tagged.append(&mut shard.outbox.lock().expect("outbox poisoned").alerts);
        }
        tagged.sort_by_key(|(seq, _)| *seq);
        tagged.into_iter().map(|(_, alert)| alert).collect()
    }

    /// Flushes, then snapshots the throughput and cache counters.
    pub fn stats(&mut self) -> ServeStats {
        self.flush();
        ServeStats {
            records_per_shard: self
                .shards
                .iter()
                .map(|s| s.records.load(Ordering::Relaxed))
                .collect(),
            pending_alerts: self
                .shards
                .iter()
                .map(|s| s.outbox.lock().expect("outbox poisoned").alerts.len())
                .sum(),
            cache: self.cache.as_ref().map(|c| c.stats()),
        }
    }

    /// Stops the workers and hands back the system, the remaining alerts
    /// and the accumulated verified-normal feedback.
    pub fn shutdown(mut self) -> ShutdownReport {
        let alerts = self.drain_alerts();
        let mut verified_normals = Vec::new();
        for shard in &mut self.shards {
            shard
                .tx
                .send(Msg::Shutdown)
                .expect("serving shard terminated");
            let mut tracker = shard
                .handle
                .take()
                .expect("shard joined twice")
                .join()
                .expect("serving shard panicked");
            verified_normals.append(&mut tracker.take_verified_normals());
        }
        self.cache = None;
        self.shards.clear();
        let system_arc = Arc::clone(&self.system);
        drop(self);
        let system = Arc::try_unwrap(system_arc).unwrap_or_else(|arc| (*arc).clone());
        ShutdownReport {
            system,
            alerts,
            verified_normals,
        }
    }
}

impl Drop for ShardedOnlineUcad {
    fn drop(&mut self) {
        // Dropping the senders ends each worker's recv loop; detach rather
        // than join so a panicking test does not deadlock on its own shards.
        for shard in &mut self.shards {
            let _ = shard.tx.send(Msg::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_routes_uniformly_and_deterministically() {
        let counts = |seed: u64, shards: u64| {
            let mut c = vec![0usize; shards as usize];
            for id in 0..10_000u64 {
                c[(splitmix64(seed ^ id) % shards) as usize] += 1;
            }
            c
        };
        let a = counts(7, 8);
        let b = counts(7, 8);
        assert_eq!(a, b, "assignment must be a pure function of the seed");
        for (i, n) in a.iter().enumerate() {
            assert!(
                (1000..1500).contains(n),
                "shard {i} holds {n}/10000 sessions; routing is skewed"
            );
        }
        // Per-shard counts can coincide across seeds (xor by a constant is a
        // bijection), so compare the per-session assignment map instead.
        let map =
            |seed: u64| -> Vec<u64> { (0..100u64).map(|id| splitmix64(seed ^ id) % 8).collect() };
        assert_ne!(map(7), map(8), "seed must matter");
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.shards >= 1);
        assert!(cfg.queue_capacity >= 1);
        assert_eq!(cfg.mode, DetectionMode::Streaming);
    }
}
