//! The transport-agnostic admission surface of the serving engine.
//!
//! [`Admission`] is the contract every front door to UCAD serving offers:
//! submit audit records, close sessions, feed back false alarms, flush, and
//! drain the seq-ordered alert stream. [`crate::ShardedOnlineUcad`]
//! implements it in-process; `ucad-net`'s client and router implement it
//! over TCP against daemon processes. Callers written against the trait —
//! `examples/serving.rs` is one — run unchanged on either side of the wire.
//!
//! Every method is fallible: the in-process engine only errors on durable
//! I/O, but a network implementation can fail anywhere, and the trait's
//! whole point is that callers handle both identically. Methods take
//! `&mut self` for the same reason — a network client owns a connection
//! even where the in-process engine would get by with `&self`.
//!
//! The module also hosts the two routing/merging primitives whose *sharing*
//! is the cross-process determinism argument:
//!
//! * [`splitmix64`] — the session-routing hash. The in-process engine
//!   shards by `splitmix64(seed ^ session_id) % shards`; the net router
//!   picks a daemon by the identical expression. One discipline, two
//!   scales.
//! * [`merge_seq_sorted`] — the drain-side merge. The engine merges
//!   per-shard outboxes with it; the router merges per-daemon drains with
//!   it. Because both run the exact same code path over streams tagged
//!   with the same global arrival sequence, the merged alert stream is
//!   byte-identical for any topology.

use crate::online::Alert;
use crate::serve::{ServeStats, SubmitOutcome};
use ucad_dbsim::LogRecord;
use ucad_model::UcadError;

/// SplitMix64 finalizer: a cheap, well-mixed hash. This is the single
/// routing discipline of the whole system — in-process shard assignment and
/// cross-process daemon assignment both compute
/// `splitmix64(seed ^ session_id) % n`.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Merges independently collected streams of seq-tagged items into one
/// globally seq-ordered stream. Within a stream, items raised for the same
/// triggering record keep their relative order (the sort is stable), so the
/// result is a deterministic function of the tagged contents alone — not of
/// how the items were partitioned. Both the engine's per-shard outbox drain
/// and the router's per-daemon drain merge go through this function, which
/// is what makes cross-process output byte-identical to single-process.
pub fn merge_seq_sorted<T>(
    streams: impl IntoIterator<Item = Vec<T>>,
    seq_of: impl Fn(&T) -> u64,
) -> Vec<T> {
    let mut merged: Vec<T> = streams.into_iter().flatten().collect();
    merged.sort_by_key(seq_of);
    merged
}

/// The transport-agnostic serving front door: everything a traffic driver
/// needs, whether the engine lives in this process or behind a socket.
///
/// Implementations must preserve the engine's determinism contract: given
/// the same submission sequence, [`Admission::drain_alerts`] at the same
/// points returns byte-identical alert lists, and the accounting identity
/// `accepted + shed + degraded == submitted` holds exactly.
pub trait Admission {
    /// Submits one audit record for scoring. Overload surfaces as a typed
    /// [`SubmitOutcome`] (`Accepted` / `Shed` / `Degraded`), never a panic.
    fn try_submit(&mut self, record: &LogRecord) -> Result<SubmitOutcome, UcadError>;

    /// Closes a session (Block mode scores the pending tail, which can
    /// itself raise an alert).
    fn close_session(&mut self, session_id: u64) -> Result<(), UcadError>;

    /// DBA feedback: the alert on `session_id` was a false alarm.
    fn confirm_false_alarm(&mut self, session_id: u64) -> Result<(), UcadError>;

    /// Barrier: returns once everything submitted so far has been fully
    /// processed.
    fn flush(&mut self) -> Result<(), UcadError>;

    /// Flushes, then returns every alert raised since the last drain,
    /// ordered by the global arrival sequence of the triggering record.
    fn drain_alerts(&mut self) -> Result<Vec<Alert>, UcadError>;

    /// Flushes, then snapshots the throughput, overload and cache counters.
    fn stats(&mut self) -> Result<ServeStats, UcadError>;

    /// Prometheus text exposition of the serving metrics registry.
    fn render_metrics(&mut self) -> Result<String, UcadError>;

    /// The flight recorder's resident per-alert diagnostics as a JSON
    /// array, oldest first.
    fn dump_flight_json(&mut self) -> Result<String, UcadError>;
}

impl Admission for crate::ShardedOnlineUcad {
    fn try_submit(&mut self, record: &LogRecord) -> Result<SubmitOutcome, UcadError> {
        crate::ShardedOnlineUcad::try_submit(self, record)
    }

    fn close_session(&mut self, session_id: u64) -> Result<(), UcadError> {
        crate::ShardedOnlineUcad::close_session(self, session_id);
        Ok(())
    }

    fn confirm_false_alarm(&mut self, session_id: u64) -> Result<(), UcadError> {
        crate::ShardedOnlineUcad::confirm_false_alarm(self, session_id);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), UcadError> {
        crate::ShardedOnlineUcad::flush(self);
        Ok(())
    }

    fn drain_alerts(&mut self) -> Result<Vec<Alert>, UcadError> {
        Ok(crate::ShardedOnlineUcad::drain_alerts(self))
    }

    fn stats(&mut self) -> Result<ServeStats, UcadError> {
        Ok(crate::ShardedOnlineUcad::stats(self))
    }

    fn render_metrics(&mut self) -> Result<String, UcadError> {
        Ok(crate::ShardedOnlineUcad::render_metrics(self))
    }

    fn dump_flight_json(&mut self) -> Result<String, UcadError> {
        Ok(crate::ShardedOnlineUcad::dump_flight_json(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_partition_independent() {
        // The same 6 tagged items, split two different ways, merge to the
        // same stream — the property the cross-process router relies on.
        let items = |seqs: &[u64]| -> Vec<(u64, char)> {
            seqs.iter()
                .map(|&s| (s, (b'a' + s as u8) as char))
                .collect()
        };
        let merged_a = merge_seq_sorted(vec![items(&[0, 3, 5]), items(&[1, 2, 4])], |t| t.0);
        let merged_b =
            merge_seq_sorted(vec![items(&[4, 5]), items(&[0, 1]), items(&[2, 3])], |t| {
                t.0
            });
        assert_eq!(merged_a, merged_b);
        assert_eq!(merged_a, items(&[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn merge_is_stable_within_a_stream() {
        // Two items with the same seq from one stream keep their order.
        let merged = merge_seq_sorted(vec![vec![(7u64, 'x'), (7, 'y')], vec![(1, 'z')]], |t| t.0);
        assert_eq!(merged, vec![(1, 'z'), (7, 'x'), (7, 'y')]);
    }
}
