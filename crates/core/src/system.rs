//! The UCAD system façade (§3): preprocessing module + anomaly detection
//! module, with the offline-training and online-detection stages.

use serde::{Deserialize, Serialize};
use ucad_model::{Detection, Detector, DetectorConfig, TrainReport, TransDas, TransDasConfig};
use ucad_preprocess::{PolicyViolation, PreprocessConfig, PreprocessReport, Preprocessor};
use ucad_trace::Session;

/// Full system configuration. `model.vocab_size` is a placeholder — the
/// actual key-space size is substituted after the vocabulary is built.
#[derive(Debug, Clone, Copy)]
pub struct UcadConfig {
    /// Preprocessing pipeline configuration.
    pub preprocess: PreprocessConfig,
    /// Trans-DAS configuration template.
    pub model: TransDasConfig,
    /// Top-p detector configuration.
    pub detector: DetectorConfig,
    /// Seed for the cleaning stage's sampling.
    pub seed: u64,
}

impl UcadConfig {
    /// Paper defaults for Scenario-I.
    pub fn scenario1() -> Self {
        UcadConfig {
            preprocess: PreprocessConfig::default(),
            model: TransDasConfig::scenario1(0),
            detector: DetectorConfig::scenario1(),
            seed: 42,
        }
    }

    /// Paper defaults for Scenario-II.
    pub fn scenario2() -> Self {
        UcadConfig {
            preprocess: PreprocessConfig::default(),
            model: TransDasConfig::scenario2(0),
            detector: DetectorConfig::scenario2(),
            seed: 42,
        }
    }
}

/// Why a session was flagged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Passed policy screening and intent matching.
    Normal,
    /// Rejected by the access-control screen (known attack pattern).
    PolicyViolation(PolicyViolation),
    /// Flagged by Trans-DAS intent comparison.
    IntentMismatch(Detection),
}

impl Verdict {
    /// True when the session is considered abnormal.
    pub fn is_abnormal(&self) -> bool {
        !matches!(self, Verdict::Normal)
    }
}

/// Training-stage report.
#[derive(Debug, Clone)]
pub struct UcadTrainReport {
    /// Preprocessing statistics.
    pub preprocess: PreprocessReport,
    /// Model training statistics.
    pub model: TrainReport,
    /// Purified training sessions used.
    pub purified_sessions: usize,
}

/// A trained UCAD instance. `Clone` snapshots the full preprocessing and
/// model state, so independent serving engines can be built around
/// identical systems (the determinism tests rely on this).
#[derive(Clone)]
pub struct Ucad {
    /// Fitted preprocessing state.
    pub preprocessor: Preprocessor,
    /// Trained Trans-DAS model.
    pub model: TransDas,
    /// Detector configuration.
    pub detector: DetectorConfig,
}

impl Ucad {
    /// Offline training stage (§5.2): fits the preprocessor on the raw log,
    /// purifies it, and trains Trans-DAS on the purified sessions.
    pub fn train(raw_sessions: &[Session], cfg: UcadConfig) -> (Ucad, UcadTrainReport) {
        let (preprocessor, purified, pre_report) =
            Preprocessor::fit(raw_sessions, cfg.preprocess, cfg.seed);
        let model_cfg = TransDasConfig {
            vocab_size: preprocessor.vocab.key_space(),
            ..cfg.model
        };
        let mut model = TransDas::new(model_cfg);
        let model_report = model.train(&purified);
        let report = UcadTrainReport {
            preprocess: pre_report,
            model: model_report,
            purified_sessions: purified.len(),
        };
        (
            Ucad {
                preprocessor,
                model,
                detector: cfg.detector,
            },
            report,
        )
    }

    /// Trains directly on pre-tokenized purified sessions, bypassing the
    /// preprocessing stage (used by experiments that tokenize up front and
    /// by the ablation/sweep harnesses).
    pub fn train_tokenized(
        preprocessor: Preprocessor,
        purified: &[Vec<u32>],
        model_cfg: TransDasConfig,
        detector: DetectorConfig,
    ) -> (Ucad, TrainReport) {
        let model_cfg = TransDasConfig {
            vocab_size: preprocessor.vocab.key_space(),
            ..model_cfg
        };
        let mut model = TransDas::new(model_cfg);
        let report = model.train(purified);
        (
            Ucad {
                preprocessor,
                model,
                detector,
            },
            report,
        )
    }

    /// Online detection stage (§5.3): policy screen first, then contextual
    /// intent comparison through the trained model.
    pub fn detect(&self, session: &Session) -> Verdict {
        if let Some(v) = self.preprocessor.screen(session) {
            return Verdict::PolicyViolation(v);
        }
        let keys = self.preprocessor.transform(session);
        self.detect_keys(&keys)
    }

    /// Detection on an already-tokenized session (no policy screen).
    pub fn detect_keys(&self, keys: &[u32]) -> Verdict {
        let detector = Detector::new(&self.model, self.detector);
        let d = detector.detect_session(keys);
        if d.abnormal {
            Verdict::IntentMismatch(d)
        } else {
            Verdict::Normal
        }
    }

    /// Fine-tunes the model on newly verified normal sessions (§5.2
    /// concept-drift handling). Sessions are tokenized with the frozen
    /// vocabulary.
    pub fn fine_tune(&mut self, verified_normals: &[Session], epochs: usize) -> TrainReport {
        let tokenized: Vec<Vec<u32>> = verified_normals
            .iter()
            .map(|s| self.preprocessor.transform(s))
            .collect();
        self.model.fine_tune(&tokenized, epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucad_model::MaskMode;
    use ucad_trace::{generate_raw_log, AnomalySynthesizer, ScenarioSpec, SessionGenerator};

    fn small_cfg() -> UcadConfig {
        let mut cfg = UcadConfig::scenario1();
        cfg.model = TransDasConfig {
            hidden: 8,
            heads: 2,
            blocks: 2,
            window: 12,
            epochs: 6,
            mask: MaskMode::TransDas,
            ..TransDasConfig::scenario1(0)
        };
        cfg
    }

    #[test]
    fn end_to_end_train_and_detect() {
        let spec = ScenarioSpec::commenting();
        let raw = generate_raw_log(&spec, 80, 0.1, 100);
        let (ucad, report) = Ucad::train(&raw.sessions, small_cfg());
        assert!(report.purified_sessions > 20);
        assert!(report.preprocess.vocab_size >= 15);
        assert!(!report.model.epoch_losses.is_empty());

        // A fresh normal session should mostly pass; a policy-violating one
        // must be screened.
        let mut gen = SessionGenerator::new(spec.clone());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let violating = gen.noise_policy_violation(&mut rng).session;
        assert!(matches!(
            ucad.detect(&violating),
            Verdict::PolicyViolation(_)
        ));
    }

    #[test]
    fn detects_credential_stealing_better_than_chance() {
        let spec = ScenarioSpec::commenting();
        let raw = generate_raw_log(&spec, 120, 0.0, 101);
        let (ucad, _) = Ucad::train(&raw.sessions, small_cfg());

        let mut gen = SessionGenerator::new(spec.clone());
        let synth = AnomalySynthesizer::new(&spec);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);
        let mut caught = 0;
        let mut false_alarms = 0;
        let n = 20;
        for _ in 0..n {
            let normal = gen.normal_session(&mut rng).session;
            let abnormal = synth.credential_stealing(&normal, &mut gen, &mut rng);
            if ucad
                .detect_keys(&ucad.preprocessor.transform(&abnormal.session))
                .is_abnormal()
            {
                caught += 1;
            }
            if ucad
                .detect_keys(&ucad.preprocessor.transform(&normal))
                .is_abnormal()
            {
                false_alarms += 1;
            }
        }
        assert!(
            caught > false_alarms,
            "A2 detection not better than chance: caught {caught}, false alarms {false_alarms}"
        );
        assert!(caught >= n / 2, "caught only {caught}/{n} A2 sessions");
    }

    #[test]
    fn fine_tune_runs_on_frozen_vocabulary() {
        let spec = ScenarioSpec::commenting();
        let raw = generate_raw_log(&spec, 60, 0.0, 102);
        let (mut ucad, _) = Ucad::train(&raw.sessions, small_cfg());
        let mut gen = SessionGenerator::new(spec);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let new_normals: Vec<_> = (0..5)
            .map(|_| gen.normal_session(&mut rng).session)
            .collect();
        let report = ucad.fine_tune(&new_normals, 2);
        assert_eq!(report.epoch_losses.len(), 2);
    }

    #[test]
    fn verdict_classification() {
        assert!(!Verdict::Normal.is_abnormal());
        let d = Detection {
            abnormal: true,
            first_anomaly: Some(3),
            positions_checked: 5,
        };
        assert!(Verdict::IntentMismatch(d).is_abnormal());
    }
}
