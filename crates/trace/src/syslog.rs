//! Synthetic system-log datasets standing in for HDFS, BGL and Thunderbird
//! (the §6.6 transferability experiments).
//!
//! The public datasets are multi-hundred-million-line traces; what the
//! transferability result depends on is their statistical shape: log-key
//! sessions with (a) a modest template vocabulary, (b) a characteristic
//! anomaly rate, and (c) *more rigid ordering* than human database sessions —
//! the property the paper uses to explain LogCluster's precision edge. Each
//! generator reproduces those three properties.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One log session (e.g. an HDFS block lifecycle) with ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSession {
    /// Log-template strings in order.
    pub events: Vec<String>,
    /// Ground-truth label.
    pub abnormal: bool,
}

/// A system-log dataset: normal-only training sessions plus a labeled test
/// split.
#[derive(Debug, Clone)]
pub struct LogDataset {
    /// Dataset name ("hdfs" / "bgl" / "thunderbird").
    pub name: &'static str,
    /// Normal training sessions.
    pub train: Vec<Vec<String>>,
    /// Labeled test sessions.
    pub test: Vec<EventSession>,
}

impl LogDataset {
    /// Fraction of abnormal sessions in the test split.
    pub fn anomaly_rate(&self) -> f64 {
        if self.test.is_empty() {
            return 0.0;
        }
        self.test.iter().filter(|s| s.abnormal).count() as f64 / self.test.len() as f64
    }
}

/// Generative model of one log source.
#[derive(Debug, Clone)]
pub struct SyslogSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Normal log templates (abstracted lines).
    pub normal_templates: Vec<String>,
    /// Anomaly-indicating templates.
    pub anomaly_templates: Vec<String>,
    /// Normal session skeletons (indices into `normal_templates`); a session
    /// is a skeleton with bounded local reordering.
    pub skeletons: Vec<Vec<usize>>,
    /// Probability that adjacent events keep their skeleton order
    /// (1.0 = fully rigid application logging).
    pub order_rigidity: f64,
    /// Test-set anomaly rate of the real dataset.
    pub anomaly_rate: f64,
}

impl SyslogSpec {
    /// HDFS-like: block-lifecycle sessions, 2.9% anomalies. Replica events
    /// arrive in interleaved order, so rigidity is moderate.
    pub fn hdfs_like() -> Self {
        let t = |s: &str| s.to_string();
        let normal_templates = vec![
            t("BLOCK* NameSystem.allocateBlock: <*>"),          // 0
            t("Receiving block <*> src: <*> dest: <*>"),        // 1
            t("PacketResponder <*> for block <*> terminating"), // 2
            t("Received block <*> of size <*> from <*>"),       // 3
            t("BLOCK* NameSystem.addStoredBlock: blockMap updated: <*>"), // 4
            t("Verification succeeded for <*>"),                // 5
            t("BLOCK* ask <*> to replicate <*> to datanode(s) <*>"), // 6
            t("Starting thread to transfer block <*> to <*>"),  // 7
            t("Received block <*> src: <*> dest: <*> of size <*>"), // 8
            t("Deleting block <*> file <*>"),                   // 9
        ];
        // The real HDFS trace has several dozen templates; blocks go
        // through distinct lifecycles (write, replicate, read, delete,
        // lease recovery, balancing), each touching its own template
        // subset. That subset structure is what gives UCAD's out-of-session
        // negative sampling its signal.
        let mut normal_templates = normal_templates;
        normal_templates.extend([
            t("BLOCK* ask <*> to delete <*>"), // 10
            t("BLOCK* NameSystem.delete: <*> is added to invalidSet of <*>"), // 11
            t("Served block <*> to <*>"),      // 12
            t("Read block <*> from <*>"),      // 13
            t("Verification succeeded for checksum of <*>"), // 14
            t("BLOCK* NameSystem.internalReleaseLease: <*>"), // 15
            t("commitBlockSynchronization(lastblock=<*>, newgenerationstamp=<*>)"), // 16
            t("Recovering lease=<*>, src=<*>"), // 17
            t("Starting balancing round <*>"), // 18
            t("Moving block <*> from <*> to <*>"), // 19
            t("Balancing round <*> finished"), // 20
            t("Registering datanode <*>"),     // 21
            t("BLOCK* NameSystem.registerDatanode: node <*> is added"), // 22
            t("Heartbeat check from <*> ok"),  // 23
        ]);
        let anomaly_templates = vec![
            t("Exception in receiveBlock for block <*>"),
            t("writeBlock <*> received exception <*>"),
            t("PendingReplicationMonitor timed out block <*>"),
            t("Redundant addStoredBlock request received for <*>"),
            t("Unexpected error trying to delete block <*>"),
        ];
        // Write, replication, deletion, read, lease-recovery, balancing and
        // registration lifecycles; each uses a small, distinct subset.
        let skeletons = vec![
            vec![0, 1, 1, 1, 2, 3, 4, 2, 3, 4, 2, 3, 4],
            vec![0, 1, 1, 1, 2, 3, 4, 2, 3, 4, 2, 3, 4, 5],
            vec![0, 1, 1, 1, 2, 3, 4, 2, 3, 4, 2, 3, 4, 6, 7, 8, 4],
            vec![10, 11, 9, 9, 9, 11],
            vec![12, 13, 14, 12, 13, 14, 12, 13, 14],
            vec![17, 15, 16, 15, 16],
            vec![18, 19, 19, 19, 20, 18, 19, 20],
            vec![21, 22, 23, 23, 23, 23],
        ];
        SyslogSpec {
            name: "hdfs",
            normal_templates,
            anomaly_templates,
            skeletons,
            // Replica reports interleave, but only locally: block lifecycles
            // are still far more rigid than human database sessions.
            order_rigidity: 0.85,
            anomaly_rate: 0.029,
        }
    }

    /// BGL-like: supercomputer RAS stream windows, 7.3% anomalies, rigid
    /// application logging.
    pub fn bgl_like() -> Self {
        let t = |s: &str| s.to_string();
        let normal_templates = vec![
            t("instruction cache parity error corrected"),
            t("generating core.<*>"),
            t("ciod: Message code <*> is not <*> or <*>"),
            t("ciod: LOGIN chdir(<*>) failed: No such file or directory"),
            t("<*> double-hummer alignment exceptions"),
            t("CE sym <*>, at <*>, mask <*>"),
            t("total of <*> ddr error(s) detected and corrected"),
            t("ciod: Received signal <*>"),
            t("mmcs_server exited normally with exit code <*>"),
            t("idoproxydb has been started: $Name: <*> $"),
            t("ciodb has been restarted"),
            t("<*> L3 EDRAM error(s) (dcr <*>) detected and corrected"),
        ];
        let anomaly_templates = vec![
            t("data TLB error interrupt"),
            t("KERNDTLB kernel panic in interrupt handler"),
            t("machine check interrupt (bit=<*>): L2 dcache unit data parity error"),
            t("rts: kernel terminated for reason <*>"),
            t("Lustre mount FAILED : bglio<*> : block_id : <*>"),
            t("wait state enable: 0 critical input interrupt"),
        ];
        let skeletons = vec![
            vec![9, 10, 2, 3, 7, 8],
            vec![0, 5, 6, 0, 5, 6, 11],
            vec![2, 3, 2, 3, 7, 1, 8],
            vec![4, 0, 5, 6, 4, 11, 6],
            vec![9, 2, 7, 2, 7, 2, 7, 8],
        ];
        SyslogSpec {
            name: "bgl",
            normal_templates,
            anomaly_templates,
            skeletons,
            order_rigidity: 0.95,
            anomaly_rate: 0.073,
        }
    }

    /// Thunderbird-like: 1.5% anomalies, very rigid daemon logging.
    pub fn thunderbird_like() -> Self {
        let t = |s: &str| s.to_string();
        let normal_templates = vec![
            t("session opened for user root by (uid=<*>)"),
            t("session closed for user root"),
            t("connection from <*> at <*>"),
            t("running DHCP discover on eth<*>"),
            t("DHCPACK from <*>"),
            t("bound to <*> -- renewal in <*> seconds"),
            t("synchronized to <*>, stratum <*>"),
            t("kernel: e1000: eth<*>: e1000_watchdog: NIC Link is Up"),
            t("crond[<*>]: (root) CMD (run-parts /etc/cron.hourly)"),
            t("sshd[<*>]: Accepted publickey for <*>"),
            t("postfix/qmgr[<*>]: <*>: removed"),
            t("ntpd[<*>]: kernel time sync enabled <*>"),
        ];
        let anomaly_templates = vec![
            t("kernel: EXT3-fs error (device <*>): ext3_find_entry: reading directory <*>"),
            t("kernel: CPU<*>: Machine Check Exception: <*> Bank <*>"),
            t("pbs_mom: Bad file descriptor (9) in tm_request, job <*> not running"),
            t("kernel: ib_sm SM port is down"),
            t("sshd[<*>]: fatal: Read from socket failed: Connection reset by peer"),
        ];
        let skeletons = vec![
            vec![0, 9, 8, 10, 1],
            vec![3, 4, 5, 7, 6],
            vec![2, 0, 9, 10, 1, 11],
            vec![8, 10, 8, 10, 6],
            vec![0, 2, 9, 10, 11, 1],
        ];
        SyslogSpec {
            name: "thunderbird",
            normal_templates,
            anomaly_templates,
            skeletons,
            order_rigidity: 0.97,
            anomaly_rate: 0.015,
        }
    }

    fn normal_session(&self, rng: &mut impl Rng) -> Vec<String> {
        let skeleton = self.skeletons.choose(rng).expect("skeletons non-empty");
        let mut events: Vec<String> = skeleton
            .iter()
            .map(|&i| self.normal_templates[i].clone())
            .collect();
        // Bounded local reordering: each adjacent pair may swap with
        // probability (1 - rigidity).
        for i in 1..events.len() {
            if rng.gen_bool(1.0 - self.order_rigidity) {
                events.swap(i - 1, i);
            }
        }
        events
    }

    fn abnormal_session(&self, rng: &mut impl Rng) -> Vec<String> {
        let mut events = self.normal_session(rng);
        match rng.gen_range(0..3u8) {
            0 => {
                // Error burst inside an otherwise normal session.
                let burst = rng.gen_range(1..=3);
                let pos = rng.gen_range(0..=events.len());
                for _ in 0..burst {
                    let t = self
                        .anomaly_templates
                        .choose(rng)
                        .expect("anomaly templates non-empty");
                    events.insert(pos.min(events.len()), t.clone());
                }
            }
            1 => {
                // Truncated lifecycle: the session dies early and logs one
                // terminal error.
                let keep = (events.len() / 2).max(1);
                events.truncate(keep);
                let t = self
                    .anomaly_templates
                    .choose(rng)
                    .expect("anomaly templates non-empty");
                events.push(t.clone());
            }
            _ => {
                // Duplicated step plus an error (redundant event anomaly).
                if let Some(dup) = events.first().cloned() {
                    events.push(dup);
                }
                let t = self
                    .anomaly_templates
                    .choose(rng)
                    .expect("anomaly templates non-empty");
                events.push(t.clone());
            }
        }
        events
    }

    /// Generates a dataset with `n_train` normal training sessions and
    /// `n_test` test sessions at the spec's anomaly rate.
    pub fn generate(&self, n_train: usize, n_test: usize, seed: u64) -> LogDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let train = (0..n_train)
            .map(|_| self.normal_session(&mut rng))
            .collect();
        let n_abnormal = ((n_test as f64 * self.anomaly_rate).round() as usize).max(1);
        let mut test: Vec<EventSession> = (0..n_test - n_abnormal)
            .map(|_| EventSession {
                events: self.normal_session(&mut rng),
                abnormal: false,
            })
            .collect();
        test.extend((0..n_abnormal).map(|_| EventSession {
            events: self.abnormal_session(&mut rng),
            abnormal: true,
        }));
        test.shuffle(&mut rng);
        LogDataset {
            name: self.name,
            train,
            test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anomaly_rates_match_paper() {
        for (spec, rate) in [
            (SyslogSpec::hdfs_like(), 0.029),
            (SyslogSpec::bgl_like(), 0.073),
            (SyslogSpec::thunderbird_like(), 0.015),
        ] {
            let ds = spec.generate(100, 1000, 1);
            assert!(
                (ds.anomaly_rate() - rate).abs() < 0.005,
                "{}: rate {} vs expected {}",
                ds.name,
                ds.anomaly_rate(),
                rate
            );
        }
    }

    #[test]
    fn skeleton_indices_are_valid() {
        for spec in [
            SyslogSpec::hdfs_like(),
            SyslogSpec::bgl_like(),
            SyslogSpec::thunderbird_like(),
        ] {
            for sk in &spec.skeletons {
                for &i in sk {
                    assert!(i < spec.normal_templates.len(), "{}: bad index", spec.name);
                }
            }
        }
    }

    #[test]
    fn abnormal_sessions_contain_anomaly_templates() {
        let spec = SyslogSpec::hdfs_like();
        let ds = spec.generate(10, 200, 2);
        for s in ds.test.iter().filter(|s| s.abnormal) {
            let has_anomaly = s
                .events
                .iter()
                .any(|e| spec.anomaly_templates.contains(e) || s.events.len() < 6);
            assert!(
                has_anomaly,
                "abnormal session without anomaly signal: {:?}",
                s.events
            );
        }
    }

    #[test]
    fn normal_sessions_use_only_normal_templates() {
        let spec = SyslogSpec::bgl_like();
        let ds = spec.generate(50, 100, 3);
        for s in ds.train.iter() {
            for e in s {
                assert!(spec.normal_templates.contains(e));
            }
        }
        for s in ds.test.iter().filter(|s| !s.abnormal) {
            for e in &s.events {
                assert!(spec.normal_templates.contains(e));
            }
        }
    }

    #[test]
    fn rigidity_controls_order_diversity() {
        // Count distinct orderings of the same skeleton: the rigid spec
        // should produce fewer distinct sequences than the loose one.
        let distinct = |rigidity: f64| {
            let mut spec = SyslogSpec::hdfs_like();
            spec.order_rigidity = rigidity;
            spec.skeletons.truncate(1);
            let ds = spec.generate(200, 1, 4);
            let set: std::collections::HashSet<Vec<String>> = ds.train.into_iter().collect();
            set.len()
        };
        assert!(distinct(0.99) < distinct(0.5));
    }
}
