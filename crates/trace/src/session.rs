//! Session types shared by the generators and the downstream pipeline.

use serde::{Deserialize, Serialize};
use ucad_dbsim::{LogRecord, OpKind};

/// One data-access operation inside a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// Raw SQL text.
    pub sql: String,
    /// Target table.
    pub table: String,
    /// Operation kind.
    pub kind: OpKind,
    /// Execution time (seconds since epoch).
    pub timestamp: u64,
}

/// A user session: the unit the paper evaluates at (§6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Unique session identifier.
    pub id: u64,
    /// Authenticated user.
    pub user: String,
    /// Client address.
    pub client_ip: String,
    /// Operations in execution order.
    pub ops: Vec<Operation>,
}

impl Session {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the session holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Builds sessions from audit-log records (grouped by `session_id`).
    pub fn from_log_records(records: &[LogRecord]) -> Vec<Session> {
        let mut order: Vec<u64> = Vec::new();
        let mut map: std::collections::HashMap<u64, Session> = std::collections::HashMap::new();
        for r in records {
            let s = map.entry(r.session_id).or_insert_with(|| {
                order.push(r.session_id);
                Session {
                    id: r.session_id,
                    user: r.user.clone(),
                    client_ip: r.client_ip.clone(),
                    ops: Vec::new(),
                }
            });
            s.ops.push(Operation {
                sql: r.sql.clone(),
                table: r.table.clone(),
                kind: r.op,
                timestamp: r.timestamp,
            });
        }
        order
            .into_iter()
            .map(|id| map.remove(&id).expect("inserted"))
            .collect()
    }
}

/// The three anomaly classes of the paper's threat model (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// A1: authorized users abusing their privileges (extra query volume).
    PrivilegeAbuse,
    /// A2: stolen credentials hiding a few destructive ops inside normal work.
    CredentialStealing,
    /// A3: accidental, logically inconsistent misoperations.
    Misoperation,
}

/// A session with ground-truth label (None = normal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSession {
    /// The session.
    pub session: Session,
    /// Ground truth; `None` means normal.
    pub label: Option<AnomalyKind>,
}

impl LabeledSession {
    /// Wraps a normal session.
    pub fn normal(session: Session) -> Self {
        LabeledSession {
            session,
            label: None,
        }
    }

    /// Wraps an abnormal session.
    pub fn abnormal(session: Session, kind: AnomalyKind) -> Self {
        LabeledSession {
            session,
            label: Some(kind),
        }
    }

    /// True when the ground truth is abnormal.
    pub fn is_abnormal(&self) -> bool {
        self.label.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_log_records_groups_sessions() {
        let rec = |sid: u64, sql: &str, ts: u64| LogRecord {
            timestamp: ts,
            user: format!("u{sid}"),
            client_ip: "ip".into(),
            session_id: sid,
            sql: sql.into(),
            table: "t".into(),
            op: OpKind::Select,
            rows: 0,
        };
        let records = vec![
            rec(1, "SELECT * FROM t", 0),
            rec(2, "SELECT * FROM t WHERE a=1", 1),
            rec(1, "SELECT * FROM t WHERE b=2", 2),
        ];
        let sessions = Session::from_log_records(&records);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].id, 1);
        assert_eq!(sessions[0].len(), 2);
        assert_eq!(sessions[0].ops[1].timestamp, 2);
        assert_eq!(sessions[1].len(), 1);
    }

    #[test]
    fn labels() {
        let s = Session {
            id: 0,
            user: "u".into(),
            client_ip: "i".into(),
            ops: vec![],
        };
        assert!(!LabeledSession::normal(s.clone()).is_abnormal());
        assert!(LabeledSession::abnormal(s, AnomalyKind::Misoperation).is_abnormal());
    }
}
