//! Statement templates: the generative counterpart of the paper's
//! "statement keys".
//!
//! UCAD's tokenizer abstracts every literal to `$k`, so two statements map to
//! the same key iff they share an abstract shape (same command, table,
//! columns, predicate structure, `IN`-list arity and `VALUES` tuple count).
//! A [`StatementTemplate`] is exactly one such shape; instantiating it with
//! random literals yields statements that all tokenize to the same key.

use rand::Rng;
use serde::{Deserialize, Serialize};
use ucad_dbsim::{Condition, OpKind, Projection, Statement, Value};

/// Shape of one `WHERE` conjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredShape {
    /// `col = $`
    Eq,
    /// `col IN ($, ..., $)` with the given arity.
    In(usize),
}

/// Abstract statement shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TemplateShape {
    /// `SELECT (proj) FROM table WHERE ...`; `None` projection means `*`.
    Select {
        /// Projected columns, or `None` for `*`.
        projection: Option<Vec<String>>,
        /// Predicate shapes.
        preds: Vec<(String, PredShape)>,
    },
    /// `INSERT INTO table (cols) VALUES (...) x tuples`.
    Insert {
        /// Inserted columns.
        cols: Vec<String>,
        /// Number of `VALUES` tuples.
        tuples: usize,
    },
    /// `UPDATE table SET cols... WHERE ...`.
    Update {
        /// Assigned columns.
        set_cols: Vec<String>,
        /// Predicate shapes.
        preds: Vec<(String, PredShape)>,
    },
    /// `DELETE FROM table WHERE ...`.
    Delete {
        /// Predicate shapes.
        preds: Vec<(String, PredShape)>,
    },
}

/// A statement shape bound to a table, with a usage weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatementTemplate {
    /// Index into the scenario's template pool.
    pub id: usize,
    /// Target table.
    pub table: String,
    /// Abstract shape.
    pub shape: TemplateShape,
    /// Relative usage frequency; templates with weight below a scenario's
    /// rarity threshold are the "rarely performed" ops used for A3 synthesis.
    pub weight: f32,
}

impl StatementTemplate {
    /// Operation kind of the shape.
    pub fn kind(&self) -> OpKind {
        match self.shape {
            TemplateShape::Select { .. } => OpKind::Select,
            TemplateShape::Insert { .. } => OpKind::Insert,
            TemplateShape::Update { .. } => OpKind::Update,
            TemplateShape::Delete { .. } => OpKind::Delete,
        }
    }

    /// Instantiates the template with random integer literals.
    pub fn instantiate(&self, rng: &mut impl Rng) -> Statement {
        let mut value = || Value::Int(rng.gen_range(0..10_000));
        fn conds(
            preds: &[(String, PredShape)],
            value: &mut impl FnMut() -> Value,
        ) -> Vec<Condition> {
            preds
                .iter()
                .map(|(col, shape)| match shape {
                    PredShape::Eq => Condition::Eq(col.clone(), value()),
                    PredShape::In(n) => {
                        Condition::In(col.clone(), (0..*n).map(|_| value()).collect())
                    }
                })
                .collect()
        }
        match &self.shape {
            TemplateShape::Select { projection, preds } => Statement::Select {
                table: self.table.clone(),
                projection: match projection {
                    None => Projection::All,
                    Some(cols) => Projection::Columns(cols.clone()),
                },
                conditions: conds(preds, &mut value),
            },
            TemplateShape::Insert { cols, tuples } => Statement::Insert {
                table: self.table.clone(),
                columns: cols.clone(),
                rows: (0..*tuples)
                    .map(|_| (0..cols.len()).map(|_| value()).collect())
                    .collect(),
            },
            TemplateShape::Update { set_cols, preds } => Statement::Update {
                table: self.table.clone(),
                assignments: set_cols.iter().map(|c| (c.clone(), value())).collect(),
                conditions: conds(preds, &mut value),
            },
            TemplateShape::Delete { preds } => Statement::Delete {
                table: self.table.clone(),
                conditions: conds(preds, &mut value),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn select_template() -> StatementTemplate {
        StatementTemplate {
            id: 0,
            table: "t_cell_fp_3".into(),
            shape: TemplateShape::Select {
                projection: None,
                preds: vec![
                    ("pnci".into(), PredShape::Eq),
                    ("gridId".into(), PredShape::In(3)),
                ],
            },
            weight: 1.0,
        }
    }

    #[test]
    fn instantiation_matches_shape() {
        let t = select_template();
        let mut rng = StdRng::seed_from_u64(0);
        let stmt = t.instantiate(&mut rng);
        match stmt {
            Statement::Select {
                table, conditions, ..
            } => {
                assert_eq!(table, "t_cell_fp_3");
                assert_eq!(conditions.len(), 2);
                match &conditions[1] {
                    Condition::In(_, vs) => assert_eq!(vs.len(), 3),
                    other => panic!("expected IN, got {other:?}"),
                }
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn two_instantiations_differ_in_literals_only() {
        let t = select_template();
        let mut rng = StdRng::seed_from_u64(1);
        let a = t.instantiate(&mut rng).to_string();
        let b = t.instantiate(&mut rng).to_string();
        assert_ne!(a, b, "literals should differ");
        // Same abstract shape: equal after crude literal removal.
        let strip = |s: &str| {
            s.chars()
                .filter(|c| !c.is_ascii_digit())
                .collect::<String>()
        };
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn insert_tuple_count_respected() {
        let t = StatementTemplate {
            id: 1,
            table: "t".into(),
            shape: TemplateShape::Insert {
                cols: vec!["a".into(), "b".into()],
                tuples: 4,
            },
            weight: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        match t.instantiate(&mut rng) {
            Statement::Insert { rows, .. } => assert_eq!(rows.len(), 4),
            other => panic!("expected insert, got {other:?}"),
        }
        assert_eq!(t.kind(), OpKind::Insert);
    }
}
