//! Dataset assembly following the evaluation protocol of §6.1.
//!
//! Purified normal sessions are split 8:2 into a training set `T` and a
//! normal test set `V1`; `V2`/`V3` are order-swap and duplicate-removal
//! mutations of `V1`; `A1`/`A2`/`A3` are synthesized anomaly sets of the
//! same size as `V1`.

use crate::anomaly::AnomalySynthesizer;
use crate::mutate::{partial_remove, partial_swap};
use crate::scenario::{AnnotatedSession, ScenarioSpec, SessionGenerator};
use crate::session::{LabeledSession, Session};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A complete train/test bundle for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioDataset {
    /// Scenario name.
    pub scenario: &'static str,
    /// Purified training sessions `T` (may contain injected anomalies when
    /// built with contamination; see [`ScenarioDataset::generate_hybrid`]).
    pub train: Vec<Session>,
    /// Fraction of `train` that is anomalous (0.0 for clean generation).
    pub contamination: f64,
    /// Held-out normal sessions `V1`.
    pub v1: Vec<Session>,
    /// Partial-swap mutations of `V1`.
    pub v2: Vec<Session>,
    /// Partial-remove mutations of `V1`.
    pub v3: Vec<Session>,
    /// Privilege-abuse anomalies.
    pub a1: Vec<LabeledSession>,
    /// Credential-stealing anomalies.
    pub a2: Vec<LabeledSession>,
    /// Misoperation anomalies.
    pub a3: Vec<LabeledSession>,
}

impl ScenarioDataset {
    /// Generates a clean dataset with `train_sessions` training sessions
    /// (the paper's defaults are [`ScenarioSpec::default_train_sessions`]).
    pub fn generate(spec: &ScenarioSpec, train_sessions: usize, seed: u64) -> Self {
        Self::generate_hybrid(spec, train_sessions, 0.0, seed)
    }

    /// Generates a dataset whose training set is contaminated with the given
    /// fraction of synthetic anomalies (the §6.5 robustness protocol).
    /// Contaminating anomalies are freshly synthesized — never shared with
    /// the A1-A3 test sets.
    pub fn generate_hybrid(
        spec: &ScenarioSpec,
        train_sessions: usize,
        contamination: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&contamination),
            "contamination in [0,1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = SessionGenerator::new(spec.clone());
        let test_sessions = (train_sessions as f64 / 4.0).round().max(1.0) as usize;
        let total = train_sessions + test_sessions;

        let normals: Vec<AnnotatedSession> =
            (0..total).map(|_| gen.normal_session(&mut rng)).collect();
        let (train_part, test_part) = normals.split_at(train_sessions);
        let mut train: Vec<Session> = train_part.iter().map(|a| a.session.clone()).collect();

        let v1: Vec<Session> = test_part.iter().map(|a| a.session.clone()).collect();
        let v2: Vec<Session> = test_part
            .iter()
            .map(|a| partial_swap(a, &mut rng))
            .collect();
        let v3: Vec<Session> = test_part
            .iter()
            .map(|a| partial_remove(a, &mut rng))
            .collect();

        let synth = AnomalySynthesizer::new(spec);
        let a1: Vec<LabeledSession> = test_part
            .iter()
            .map(|a| synth.privilege_abuse(&a.session, &mut gen, &mut rng))
            .collect();
        let a2: Vec<LabeledSession> = test_part
            .iter()
            .map(|a| synth.credential_stealing(&a.session, &mut gen, &mut rng))
            .collect();
        let a3: Vec<LabeledSession> = (0..test_sessions)
            .map(|_| synth.misoperation(&mut gen, &mut rng))
            .collect();

        // Contaminate the training set with fresh anomalies.
        if contamination > 0.0 {
            let k = ((train.len() as f64 * contamination) / (1.0 - contamination)).round() as usize;
            for i in 0..k {
                let s = match i % 3 {
                    0 => {
                        let base = gen.normal_session(&mut rng).session;
                        synth.privilege_abuse(&base, &mut gen, &mut rng)
                    }
                    1 => {
                        let base = gen.normal_session(&mut rng).session;
                        synth.credential_stealing(&base, &mut gen, &mut rng)
                    }
                    _ => synth.misoperation(&mut gen, &mut rng),
                };
                let pos = rng.gen_range(0..=train.len());
                train.insert(pos, s.session);
            }
        }

        ScenarioDataset {
            scenario: spec.name,
            train,
            contamination,
            v1,
            v2,
            v3,
            a1,
            a2,
            a3,
        }
    }

    /// Full labeled test set: V1-3 as negatives, A1-3 as positives, in the
    /// order `(v1, v2, v3, a1, a2, a3)`.
    pub fn test_sets(&self) -> [(&'static str, Vec<LabeledSession>); 6] {
        let norm = |v: &[Session]| v.iter().cloned().map(LabeledSession::normal).collect();
        [
            ("V1", norm(&self.v1)),
            ("V2", norm(&self.v2)),
            ("V3", norm(&self.v3)),
            ("A1", self.a1.clone()),
            ("A2", self.a2.clone()),
            ("A3", self.a3.clone()),
        ]
    }
}

/// A raw (unpurified) log for exercising the preprocessing module: normal
/// sessions mixed with policy-violating, structureless and too-short noise.
#[derive(Debug, Clone)]
pub struct RawLog {
    /// All sessions in generation order.
    pub sessions: Vec<Session>,
    /// Indices of sessions that are noise (ground truth for preprocessing
    /// tests; a production system would not have this).
    pub noise_indices: Vec<usize>,
}

/// Generates a raw log with `n_normal` normal sessions and
/// `noise_frac * n_normal` noise sessions of mixed kinds.
pub fn generate_raw_log(
    spec: &ScenarioSpec,
    n_normal: usize,
    noise_frac: f64,
    seed: u64,
) -> RawLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = SessionGenerator::new(spec.clone());
    let n_noise = (n_normal as f64 * noise_frac).round() as usize;
    let mut sessions = Vec::with_capacity(n_normal + n_noise);
    let mut noise_ids = Vec::with_capacity(n_noise);
    for _ in 0..n_normal {
        sessions.push(gen.normal_session(&mut rng).session);
    }
    for i in 0..n_noise {
        let s = match i % 3 {
            0 => gen.noise_policy_violation(&mut rng),
            1 => gen.noise_rare_pattern(&mut rng),
            _ => gen.noise_short(&mut rng),
        };
        noise_ids.push(s.session.id);
        // Insertion shifts indices, so indices are recovered by id below.
        let pos = rng.gen_range(0..=sessions.len());
        sessions.insert(pos, s.session);
    }
    let ids: std::collections::HashSet<u64> = noise_ids.into_iter().collect();
    let noise_indices = sessions
        .iter()
        .enumerate()
        .filter(|(_, s)| ids.contains(&s.id))
        .map(|(i, _)| i)
        .collect();
    RawLog {
        sessions,
        noise_indices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;

    #[test]
    fn dataset_sizes_follow_protocol() {
        let spec = ScenarioSpec::commenting();
        let ds = ScenarioDataset::generate(&spec, 80, 3);
        assert_eq!(ds.train.len(), 80);
        assert_eq!(ds.v1.len(), 20);
        assert_eq!(ds.v2.len(), 20);
        assert_eq!(ds.v3.len(), 20);
        assert_eq!(ds.a1.len(), 20);
        assert_eq!(ds.a2.len(), 20);
        assert_eq!(ds.a3.len(), 20);
        assert!(ds.a1.iter().all(|s| s.is_abnormal()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = ScenarioSpec::commenting();
        let a = ScenarioDataset::generate(&spec, 20, 11);
        let b = ScenarioDataset::generate(&spec, 20, 11);
        assert_eq!(a.train, b.train);
        assert_eq!(a.a2.len(), b.a2.len());
        let c = ScenarioDataset::generate(&spec, 20, 12);
        assert_ne!(
            a.train[0].ops[0].sql, c.train[0].ops[0].sql,
            "different seeds should differ"
        );
    }

    #[test]
    fn hybrid_contamination_ratio_is_respected() {
        let spec = ScenarioSpec::commenting();
        let ds = ScenarioDataset::generate_hybrid(&spec, 50, 0.2, 4);
        // k anomalies such that k / (50 + k) ≈ 0.2 → k ≈ 13.
        let extra = ds.train.len() - 50;
        let actual = extra as f64 / ds.train.len() as f64;
        assert!(
            (actual - 0.2).abs() < 0.03,
            "contamination {} too far from 0.2",
            actual
        );
    }

    #[test]
    fn test_sets_are_labeled_correctly() {
        let spec = ScenarioSpec::commenting();
        let ds = ScenarioDataset::generate(&spec, 20, 5);
        let sets = ds.test_sets();
        for (name, set) in &sets[..3] {
            assert!(
                set.iter().all(|s| !s.is_abnormal()),
                "{name} must be normal"
            );
        }
        for (name, set) in &sets[3..] {
            assert!(
                set.iter().all(|s| s.is_abnormal()),
                "{name} must be abnormal"
            );
        }
    }

    #[test]
    fn raw_log_contains_marked_noise() {
        let spec = ScenarioSpec::commenting();
        let raw = generate_raw_log(&spec, 30, 0.3, 6);
        assert_eq!(raw.sessions.len(), 39);
        assert_eq!(raw.noise_indices.len(), 9);
        for &i in &raw.noise_indices {
            assert!(i < raw.sessions.len());
        }
    }
}
