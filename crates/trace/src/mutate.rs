//! Normal-session mutations V2 (partial swap) and V3 (partial remove).
//!
//! §6.1 of the paper builds two extra *normal* test sets from V1 to probe
//! robustness against heterogeneous access patterns:
//! * **V2 partial swap** — interchangeable operations are randomly swapped,
//!   verified not to change the session goal. Our generator records exactly
//!   which operation runs are order-free ([`AnnotatedSession::swap_spans`]),
//!   so the mutation permutes only those.
//! * **V3 partial remove** — repeated goal-irrelevant operations (e.g. the
//!   same `SELECT` issued several times) are partially removed.

use crate::scenario::AnnotatedSession;
use crate::session::Session;
use rand::seq::SliceRandom;
use rand::Rng;

/// V2: shuffles each interchangeable span of the session.
pub fn partial_swap(annotated: &AnnotatedSession, rng: &mut impl Rng) -> Session {
    let mut session = annotated.session.clone();
    for &(start, len) in &annotated.swap_spans {
        session.ops[start..start + len].shuffle(rng);
    }
    // Timestamps travel with the ops during the shuffle; restore order so
    // the log remains chronologically valid (swapping execution order of
    // interchangeable ops swaps their times too).
    let mut times: Vec<u64> = session.ops.iter().map(|o| o.timestamp).collect();
    times.sort_unstable();
    for (op, t) in session.ops.iter_mut().zip(times) {
        op.timestamp = t;
    }
    session.id |= 1 << 61;
    session
}

/// V3: removes up to half of the duplicate occurrences of repeated
/// operations (same abstract statement appearing more than once).
pub fn partial_remove(annotated: &AnnotatedSession, rng: &mut impl Rng) -> Session {
    let base = &annotated.session;
    // Count occurrences per abstract shape; literals differ between
    // instantiations, so group by the digit-stripped SQL.
    let strip = |s: &str| -> String { s.chars().filter(|c| !c.is_ascii_digit()).collect() };
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for op in &base.ops {
        *counts.entry(strip(&op.sql)).or_insert(0) += 1;
    }
    let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut ops = Vec::with_capacity(base.ops.len());
    for op in &base.ops {
        let key = strip(&op.sql);
        let total = counts[&key];
        let so_far = seen.entry(key).or_insert(0);
        *so_far += 1;
        // Keep the first occurrence always; later duplicates are dropped
        // with probability 1/2 (but never drop below one occurrence).
        if *so_far > 1 && total > 1 && rng.gen_bool(0.5) {
            continue;
        }
        ops.push(op.clone());
    }
    // Guard: a session must stay non-trivial.
    if ops.len() < 4 {
        ops = base.ops.clone();
    }
    Session {
        id: base.id | (1 << 60),
        user: base.user.clone(),
        client_ip: base.client_ip.clone(),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioSpec, SessionGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> (Vec<AnnotatedSession>, StdRng) {
        let mut gen = SessionGenerator::new(ScenarioSpec::commenting());
        let mut rng = StdRng::seed_from_u64(5);
        let sessions = (0..20).map(|_| gen.normal_session(&mut rng)).collect();
        (sessions, rng)
    }

    #[test]
    fn v2_is_a_permutation_with_same_multiset() {
        let (sessions, mut rng) = sample();
        for s in &sessions {
            let v2 = partial_swap(s, &mut rng);
            assert_eq!(v2.len(), s.session.len());
            let mut a: Vec<&str> = s.session.ops.iter().map(|o| o.sql.as_str()).collect();
            let mut b: Vec<&str> = v2.ops.iter().map(|o| o.sql.as_str()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "V2 must preserve the operation multiset");
        }
    }

    #[test]
    fn v2_only_touches_swap_spans() {
        let (sessions, mut rng) = sample();
        for s in &sessions {
            let v2 = partial_swap(s, &mut rng);
            let in_span = |i: usize| {
                s.swap_spans
                    .iter()
                    .any(|&(st, len)| i >= st && i < st + len)
            };
            for (i, (a, b)) in s.session.ops.iter().zip(v2.ops.iter()).enumerate() {
                if !in_span(i) {
                    assert_eq!(a.sql, b.sql, "op {} outside spans changed", i);
                }
            }
        }
    }

    #[test]
    fn v2_timestamps_remain_monotone() {
        let (sessions, mut rng) = sample();
        for s in &sessions {
            let v2 = partial_swap(s, &mut rng);
            for w in v2.ops.windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp);
            }
        }
    }

    #[test]
    fn v3_never_grows_and_keeps_first_occurrences() {
        let (sessions, mut rng) = sample();
        for s in &sessions {
            let v3 = partial_remove(s, &mut rng);
            assert!(v3.len() <= s.session.len());
            assert!(v3.len() >= 4);
            // The set of abstract shapes is preserved (only duplicates drop).
            let strip = |x: &str| -> String { x.chars().filter(|c| !c.is_ascii_digit()).collect() };
            let a: std::collections::HashSet<String> =
                s.session.ops.iter().map(|o| strip(&o.sql)).collect();
            let b: std::collections::HashSet<String> =
                v3.ops.iter().map(|o| strip(&o.sql)).collect();
            assert_eq!(a, b, "V3 must not remove the last instance of any op");
        }
    }

    #[test]
    fn mutated_ids_are_distinct_from_originals() {
        let (sessions, mut rng) = sample();
        let v2 = partial_swap(&sessions[0], &mut rng);
        let v3 = partial_remove(&sessions[0], &mut rng);
        assert_ne!(v2.id, sessions[0].session.id);
        assert_ne!(v3.id, sessions[0].session.id);
        assert_ne!(v2.id, v3.id);
    }
}
