//! Scenario specifications and the workflow-driven session generator.
//!
//! The paper evaluates on two proprietary production traces; this module
//! replaces them with generative models calibrated to Table 1. Sessions are
//! produced by sampling *intent workflows* — short task arcs such as "ingest
//! fingerprints, verify, update the index" — whose internal operation order
//! is deliberately interchangeable. That reproduces the property UCAD's
//! design targets: heterogeneous operation orderings with identical
//! semantics.

use crate::session::{Operation, Session};
use crate::template::{PredShape, StatementTemplate, TemplateShape};
use rand::seq::SliceRandom;
use rand::Rng;
use ucad_dbsim::{AuditedDatabase, Database, OpKind, SessionContext};

/// A table definition for the scenario's database.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
}

/// A group of interchangeable slots inside a workflow.
#[derive(Debug, Clone)]
pub struct SlotGroup {
    /// Template ids this group draws from.
    pub pool: Vec<usize>,
    /// Minimum number of operations emitted.
    pub min_picks: usize,
    /// Maximum number of operations emitted (inclusive).
    pub max_picks: usize,
    /// Whether the emitted operations are order-free (eligible for the V2
    /// partial-swap mutation).
    pub interchangeable: bool,
}

/// An intent workflow: an ordered arc of slot groups.
#[derive(Debug, Clone)]
pub struct WorkflowSpec {
    /// Workflow name, for diagnostics.
    pub name: String,
    /// Relative sampling weight.
    pub weight: f32,
    /// Ordered groups; group order is the workflow's intent arc.
    pub groups: Vec<SlotGroup>,
}

/// A complete scenario: schema, statement shapes, workflows and population.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name ("commenting" / "location-service").
    pub name: &'static str,
    /// Database schema.
    pub tables: Vec<TableSpec>,
    /// Statement template pool; index = template id.
    pub templates: Vec<StatementTemplate>,
    /// Workflow pool.
    pub workflows: Vec<WorkflowSpec>,
    /// `(user, known_ip)` population.
    pub users: Vec<(String, String)>,
    /// Target mean session length (Table 1 "Average length").
    pub avg_session_len: usize,
    /// Fraction of sessions mixing two task workflows (the rest serve a
    /// single task). Human-facing apps mix more than machine traffic.
    pub multi_task_rate: f64,
    /// Number of purified training sessions (Table 1 "#Training session").
    pub default_train_sessions: usize,
}

impl ScenarioSpec {
    /// Template ids matching a predicate.
    pub fn template_ids(&self, pred: impl Fn(&StatementTemplate) -> bool) -> Vec<usize> {
        self.templates
            .iter()
            .filter(|t| pred(t))
            .map(|t| t.id)
            .collect()
    }

    /// Template ids of a kind on a table.
    pub fn ids_for(&self, table: &str, kind: OpKind) -> Vec<usize> {
        self.template_ids(|t| t.table == table && t.kind() == kind)
    }

    /// Templates whose weight is below `threshold` — the "rarely performed"
    /// operations used for misoperation (A3) synthesis.
    pub fn rare_template_ids(&self, threshold: f32) -> Vec<usize> {
        self.template_ids(|t| t.weight < threshold)
    }

    /// All select template ids (used for A1 privilege-abuse synthesis).
    pub fn select_template_ids(&self) -> Vec<usize> {
        self.template_ids(|t| t.kind() == OpKind::Select)
    }

    /// All delete template ids (used for A2 credential-stealing synthesis).
    pub fn delete_template_ids(&self) -> Vec<usize> {
        self.template_ids(|t| t.kind() == OpKind::Delete)
    }

    /// Number of statement keys per kind `(select, insert, update, delete)`,
    /// the Table 1 `#Keys` breakdown.
    pub fn key_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for t in &self.templates {
            match t.kind() {
                OpKind::Select => c.0 += 1,
                OpKind::Insert => c.1 += 1,
                OpKind::Update => c.2 += 1,
                OpKind::Delete => c.3 += 1,
            }
        }
        c
    }

    /// Scenario-I of the paper: an online commenting (danmu) application —
    /// 7 tables, 20 statement keys (7 select, 4 insert, 4 update, 5 delete),
    /// short sessions (avg 24).
    pub fn commenting() -> Self {
        let tables = vec![
            TableSpec {
                name: "t_content".into(),
                columns: svec(&["danmuKey", "count", "userId", "ts"]),
            },
            TableSpec {
                name: "danmu_display".into(),
                columns: svec(&["videoId", "danmuId", "ts"]),
            },
            TableSpec {
                name: "t_user".into(),
                columns: svec(&["userId", "name", "level"]),
            },
            TableSpec {
                name: "t_video".into(),
                columns: svec(&["videoId", "title", "views"]),
            },
            TableSpec {
                name: "t_like".into(),
                columns: svec(&["danmuKey", "userId"]),
            },
            TableSpec {
                name: "t_task".into(),
                columns: svec(&["userId", "done"]),
            },
            TableSpec {
                name: "t_reward".into(),
                columns: svec(&["userId", "coins"]),
            },
        ];
        let mut b = TemplateBuilder::new();
        // 7 selects
        let sel_display = b.select("danmu_display", None, &[("videoId", PredShape::Eq)], 1.0);
        let sel_content = b.select("t_content", None, &[("danmuKey", PredShape::Eq)], 1.0);
        let sel_video = b.select("t_video", None, &[("videoId", PredShape::Eq)], 1.0);
        let sel_user = b.select("t_user", None, &[("userId", PredShape::Eq)], 0.6);
        let sel_like = b.select(
            "t_like",
            None,
            &[("danmuKey", PredShape::Eq), ("userId", PredShape::Eq)],
            0.8,
        );
        let sel_task = b.select("t_task", None, &[("userId", PredShape::Eq)], 0.5);
        let sel_content_hist = b.select(
            "t_content",
            Some(&["danmuKey", "count"]),
            &[("userId", PredShape::Eq), ("ts", PredShape::In(2))],
            0.05,
        );
        // 4 inserts
        let ins_content = b.insert("t_content", &["danmuKey", "count", "userId", "ts"], 1, 1.0);
        let ins_display = b.insert("danmu_display", &["videoId", "danmuId", "ts"], 1, 1.0);
        let ins_like = b.insert("t_like", &["danmuKey", "userId"], 1, 0.8);
        let ins_reward = b.insert("t_reward", &["userId", "coins"], 1, 0.4);
        // 4 updates
        let upd_content = b.update("t_content", &["count"], &[("danmuKey", PredShape::Eq)], 1.0);
        let upd_video = b.update("t_video", &["views"], &[("videoId", PredShape::Eq)], 1.0);
        let upd_user = b.update("t_user", &["level"], &[("userId", PredShape::Eq)], 0.05);
        let upd_task = b.update("t_task", &["done"], &[("userId", PredShape::Eq)], 0.5);
        // 5 deletes
        let del_display = b.delete("danmu_display", &[("danmuId", PredShape::Eq)], 0.7);
        let del_content = b.delete("t_content", &[("danmuKey", PredShape::Eq)], 0.7);
        let del_like = b.delete(
            "t_like",
            &[("danmuKey", PredShape::Eq), ("userId", PredShape::Eq)],
            0.4,
        );
        let del_task = b.delete("t_task", &[("userId", PredShape::Eq)], 0.3);
        let del_reward = b.delete("t_reward", &[("userId", PredShape::Eq)], 0.05);

        let group = |pool: Vec<usize>, min: usize, max: usize, inter: bool| SlotGroup {
            pool,
            min_picks: min,
            max_picks: max,
            interchangeable: inter,
        };
        let workflows = vec![
            WorkflowSpec {
                name: "watch-video".into(),
                weight: 1.2,
                groups: vec![
                    group(vec![sel_video], 1, 1, false),
                    group(vec![sel_display, sel_content], 2, 5, true),
                    group(vec![upd_video], 1, 1, false),
                ],
            },
            WorkflowSpec {
                name: "post-danmu".into(),
                weight: 1.0,
                groups: vec![
                    group(vec![ins_content], 1, 1, false),
                    group(vec![ins_display], 1, 1, false),
                    group(vec![sel_content, sel_display], 1, 2, true),
                    group(vec![upd_video], 0, 1, false),
                ],
            },
            WorkflowSpec {
                name: "like-danmu".into(),
                weight: 0.9,
                groups: vec![
                    group(vec![sel_display], 1, 1, false),
                    group(vec![ins_like], 1, 1, false),
                    group(vec![upd_content], 1, 1, false),
                ],
            },
            WorkflowSpec {
                name: "moderate-content".into(),
                weight: 0.6,
                groups: vec![
                    group(vec![sel_content], 1, 2, true),
                    group(vec![del_content], 1, 1, false),
                    group(vec![del_display], 1, 1, false),
                ],
            },
            WorkflowSpec {
                name: "daily-task".into(),
                weight: 0.5,
                groups: vec![
                    group(vec![sel_task], 1, 1, false),
                    group(vec![upd_task], 1, 1, false),
                    group(vec![ins_reward], 1, 1, false),
                ],
            },
            WorkflowSpec {
                name: "retract-like".into(),
                weight: 0.3,
                groups: vec![
                    group(vec![sel_like], 1, 1, false),
                    group(vec![del_like], 1, 1, false),
                    group(vec![upd_content], 1, 1, false),
                ],
            },
            WorkflowSpec {
                name: "cleanup-tasks".into(),
                weight: 0.15,
                groups: vec![
                    group(vec![sel_task, sel_user], 1, 2, true),
                    group(vec![del_task], 1, 1, false),
                ],
            },
            // Rare administrative workflows: these keep every statement key
            // reachable in normal traffic (the paper's A3 misoperations are
            // *rarely performed* normal ops, not unseen ones).
            WorkflowSpec {
                name: "profile-upgrade".into(),
                weight: 0.06,
                groups: vec![
                    group(vec![sel_user], 1, 1, false),
                    group(vec![upd_user], 1, 1, false),
                ],
            },
            WorkflowSpec {
                name: "history-audit".into(),
                weight: 0.06,
                groups: vec![
                    group(vec![sel_user], 1, 1, false),
                    group(vec![sel_content_hist], 1, 2, true),
                ],
            },
            WorkflowSpec {
                name: "reward-revoke".into(),
                weight: 0.05,
                groups: vec![
                    group(vec![sel_task], 1, 1, false),
                    group(vec![del_reward], 1, 1, false),
                ],
            },
        ];
        ScenarioSpec {
            name: "commenting",
            tables,
            templates: b.templates,
            workflows,
            users: (0..12)
                .map(|u| (format!("user{u}"), format!("10.0.{u}.1")))
                .collect(),
            avg_session_len: 24,
            multi_task_rate: 0.12,
            default_train_sessions: 354,
        }
    }

    /// Scenario-II of the paper: a location service — 15 tables, 593
    /// statement keys, long sessions (avg 129), select/insert heavy.
    ///
    /// Note: the paper's Table 1 prints the per-kind breakdown
    /// `(238, 351, 146, 4)`, which sums to 739, not to the stated 593 total.
    /// We keep the total (593) and the select/insert dominance by using
    /// `(238, 205, 146, 4)`.
    pub fn location_service() -> Self {
        let mut tables = Vec::new();
        for i in 0..10 {
            tables.push(TableSpec {
                name: format!("t_cell_fp_{i}"),
                columns: svec(&["pnci", "gridId", "fps"]),
            });
        }
        for j in 0..3 {
            tables.push(TableSpec {
                name: format!("t_cell_picn_{j}"),
                columns: svec(&["pnci", "pi", "cn"]),
            });
        }
        tables.push(TableSpec {
            name: "loc_rm".into(),
            columns: svec(&["devId", "lat", "lon", "ts"]),
        });
        tables.push(TableSpec {
            name: "loc_rmf".into(),
            columns: svec(&["devId", "lat", "lon", "ts"]),
        });

        let mut b = TemplateBuilder::new();
        // --- Selects: 10x22 on fp tables + 6 on picn + 12 on loc_* = 238.
        for i in 0..10 {
            let t = format!("t_cell_fp_{i}");
            for arity in 2..=23usize {
                // Small IN-lists dominate; very large ones are rare.
                let weight = 1.0 / (1.0 + 0.4 * (arity as f32 - 2.0));
                b.select(
                    &t,
                    None,
                    &[("pnci", PredShape::Eq), ("gridId", PredShape::In(arity))],
                    weight,
                );
            }
        }
        for j in 0..3 {
            let t = format!("t_cell_picn_{j}");
            b.select(&t, None, &[("pnci", PredShape::Eq)], 1.0);
            b.select(
                &t,
                None,
                &[("pnci", PredShape::Eq), ("pi", PredShape::Eq)],
                0.4,
            );
        }
        b.select("loc_rm", None, &[("devId", PredShape::Eq)], 1.0);
        b.select(
            "loc_rm",
            None,
            &[("devId", PredShape::Eq), ("ts", PredShape::Eq)],
            0.6,
        );
        b.select("loc_rm", None, &[("ts", PredShape::Eq)], 0.3);
        b.select(
            "loc_rm",
            Some(&["lat", "lon"]),
            &[("devId", PredShape::Eq)],
            0.8,
        );
        b.select("loc_rm", None, &[("devId", PredShape::In(2))], 0.3);
        b.select("loc_rm", None, &[("devId", PredShape::In(3))], 0.2);
        b.select("loc_rm", None, &[("ts", PredShape::In(2))], 0.05);
        b.select("loc_rm", Some(&["ts"]), &[("devId", PredShape::Eq)], 0.3);
        b.select("loc_rmf", None, &[("devId", PredShape::Eq)], 0.8);
        b.select("loc_rmf", None, &[("ts", PredShape::Eq)], 0.1);
        b.select(
            "loc_rmf",
            Some(&["lat", "lon"]),
            &[("devId", PredShape::Eq)],
            0.4,
        );
        b.select("loc_rmf", None, &[("devId", PredShape::In(2))], 0.05);
        // --- Inserts: 10x18 on fp + 3x5 on picn + 5 + 5 on loc_* = 205.
        for i in 0..10 {
            let t = format!("t_cell_fp_{i}");
            for tuples in 1..=18usize {
                let weight = 1.0 / (1.0 + 0.5 * (tuples as f32 - 1.0));
                b.insert(&t, &["pnci", "gridId", "fps"], tuples, weight);
            }
        }
        for j in 0..3 {
            let t = format!("t_cell_picn_{j}");
            for tuples in 1..=5usize {
                b.insert(&t, &["pnci", "pi", "cn"], tuples, 1.0 / tuples as f32);
            }
        }
        for tuples in 1..=5usize {
            b.insert(
                "loc_rm",
                &["devId", "lat", "lon", "ts"],
                tuples,
                1.0 / tuples as f32,
            );
        }
        for tuples in 1..=5usize {
            b.insert(
                "loc_rmf",
                &["devId", "lat", "lon", "ts"],
                tuples,
                0.8 / tuples as f32,
            );
        }
        // --- Updates: 10x14 on fp + 6 on picn = 146.
        for i in 0..10 {
            let t = format!("t_cell_fp_{i}");
            b.update(
                &t,
                &["fps"],
                &[("pnci", PredShape::Eq), ("gridId", PredShape::Eq)],
                1.0,
            );
            for arity in 2..=13usize {
                let weight = 0.6 / (1.0 + 0.4 * (arity as f32 - 2.0));
                b.update(
                    &t,
                    &["fps"],
                    &[("pnci", PredShape::Eq), ("gridId", PredShape::In(arity))],
                    weight,
                );
            }
            b.update(&t, &["fps", "gridId"], &[("pnci", PredShape::Eq)], 0.08);
        }
        for j in 0..3 {
            let t = format!("t_cell_picn_{j}");
            b.update(
                &t,
                &["cn"],
                &[("pnci", PredShape::Eq), ("pi", PredShape::Eq)],
                0.6,
            );
            b.update(&t, &["pi", "cn"], &[("pnci", PredShape::Eq)], 0.1);
        }
        // --- Deletes: 4 total, all rare.
        let del_rm_dev = b.delete("loc_rm", &[("devId", PredShape::Eq)], 0.15);
        b.delete("loc_rm", &[("ts", PredShape::Eq)], 0.04);
        b.delete("loc_rmf", &[("devId", PredShape::Eq)], 0.08);
        b.delete("t_cell_fp_0", &[("pnci", PredShape::Eq)], 0.03);

        // Workflow pools, assembled from the programmatic template ranges.
        // Every workflow's key footprint is kept near (or below) the
        // scenario's detection budget p=10: a session serves one task, so
        // its plausible next-operation set must be coverable by top-p.
        let fp_sel_range = |b: &TemplateBuilder, i: usize, lo: usize, hi: usize| -> Vec<usize> {
            b.ids(|t| {
                t.table == format!("t_cell_fp_{i}")
                    && matches!(
                        &t.shape,
                        TemplateShape::Select { preds, .. }
                            if matches!(preds.last(), Some((_, PredShape::In(a))) if *a >= lo && *a <= hi)
                    )
            })
        };
        let fp_ins_range = |b: &TemplateBuilder, i: usize, lo: usize, hi: usize| -> Vec<usize> {
            b.ids(|t| {
                t.table == format!("t_cell_fp_{i}")
                    && matches!(&t.shape, TemplateShape::Insert { tuples, .. } if *tuples >= lo && *tuples <= hi)
            })
        };
        let fp_upd_eq = |b: &TemplateBuilder, i: usize| -> Vec<usize> {
            b.ids(|t| {
                t.table == format!("t_cell_fp_{i}")
                    && matches!(&t.shape, TemplateShape::Update { set_cols, preds }
                        if set_cols.len() == 1
                            && preds.iter().all(|(_, p)| matches!(p, PredShape::Eq)))
            })
        };
        let fp_upd_in = |b: &TemplateBuilder, i: usize, lo: usize, hi: usize| -> Vec<usize> {
            b.ids(|t| {
                t.table == format!("t_cell_fp_{i}")
                    && matches!(&t.shape, TemplateShape::Update { preds, .. }
                        if preds.iter().any(|(_, p)| matches!(p, PredShape::In(a) if *a >= lo && *a <= hi)))
            })
        };
        let fp_upd_multi = |b: &TemplateBuilder, i: usize| -> Vec<usize> {
            b.ids(|t| {
                t.table == format!("t_cell_fp_{i}")
                    && matches!(&t.shape, TemplateShape::Update { set_cols, .. } if set_cols.len() > 1)
            })
        };
        let picn_sel = |b: &TemplateBuilder, j: usize| -> Vec<usize> {
            b.ids(|t| {
                t.table == format!("t_cell_picn_{j}")
                    && matches!(&t.shape, TemplateShape::Select { .. })
            })
        };
        let picn_ins_range = |b: &TemplateBuilder, j: usize, lo: usize, hi: usize| -> Vec<usize> {
            b.ids(|t| {
                t.table == format!("t_cell_picn_{j}")
                    && matches!(&t.shape, TemplateShape::Insert { tuples, .. } if *tuples >= lo && *tuples <= hi)
            })
        };
        let picn_upd = |b: &TemplateBuilder, j: usize| -> Vec<usize> {
            b.ids(|t| {
                t.table == format!("t_cell_picn_{j}")
                    && matches!(&t.shape, TemplateShape::Update { .. })
            })
        };
        let loc_rm_sel_common =
            b.ids(|t| t.table == "loc_rm" && t.kind() == OpKind::Select && t.weight >= 0.5);
        let loc_rm_sel_rare =
            b.ids(|t| t.table == "loc_rm" && t.kind() == OpKind::Select && t.weight < 0.5);
        let loc_rmf_sel = b.ids(|t| t.table == "loc_rmf" && t.kind() == OpKind::Select);
        let loc_ins_range = |b: &TemplateBuilder,
                             table: &str,
                             lo: usize,
                             hi: usize|
         -> Vec<usize> {
            let table = table.to_string();
            b.ids(|t| {
                t.table == table
                    && matches!(&t.shape, TemplateShape::Insert { tuples, .. } if *tuples >= lo && *tuples <= hi)
            })
        };

        let group = |pool: Vec<usize>, min: usize, max: usize, inter: bool| SlotGroup {
            pool,
            min_picks: min,
            max_picks: max,
            interchangeable: inter,
        };
        let mut workflows = Vec::new();
        for i in 0..10 {
            // The Figure 6 pattern: alternating INSERT/SELECT bursts on one
            // fp table, finished by a picn insert. Footprint ~10 keys.
            workflows.push(WorkflowSpec {
                name: format!("cell-update-{i}"),
                weight: 1.0,
                groups: vec![
                    group(fp_ins_range(&b, i, 1, 4), 1, 2, true),
                    group(fp_sel_range(&b, i, 2, 5), 1, 3, true),
                    group(fp_upd_eq(&b, i), 0, 1, false),
                    group(picn_ins_range(&b, i % 3, 1, 1), 0, 1, false),
                ],
            });
            // Verification sweeps: wider selects plus small re-grids.
            workflows.push(WorkflowSpec {
                name: format!("cell-verify-{i}"),
                weight: 0.5,
                groups: vec![
                    group(fp_sel_range(&b, i, 2, 8), 2, 4, true),
                    group(fp_upd_in(&b, i, 2, 4), 1, 2, true),
                ],
            });
            // Pure read bursts over one table's grid.
            workflows.push(WorkflowSpec {
                name: format!("grid-query-{i}"),
                weight: 0.3,
                groups: vec![group(fp_sel_range(&b, i, 2, 10), 3, 8, true)],
            });
            // Rare batch maintenance tasks, each with a bounded footprint.
            workflows.push(WorkflowSpec {
                name: format!("bulk-ingest-{i}"),
                weight: 0.05,
                groups: vec![
                    group(fp_ins_range(&b, i, 5, 12), 2, 4, true),
                    group(fp_sel_range(&b, i, 9, 12), 1, 2, true),
                ],
            });
            workflows.push(WorkflowSpec {
                name: format!("bulk-refresh-{i}"),
                weight: 0.04,
                groups: vec![
                    group(fp_ins_range(&b, i, 13, 18), 1, 3, true),
                    group(fp_sel_range(&b, i, 13, 18), 1, 3, true),
                ],
            });
            workflows.push(WorkflowSpec {
                name: format!("grid-scan-{i}"),
                weight: 0.04,
                groups: vec![
                    group(fp_sel_range(&b, i, 17, 23), 1, 3, true),
                    group(fp_upd_in(&b, i, 5, 8), 1, 2, true),
                ],
            });
            workflows.push(WorkflowSpec {
                name: format!("reindex-{i}"),
                weight: 0.04,
                groups: vec![
                    group(fp_upd_in(&b, i, 9, 13), 1, 3, true),
                    group(fp_upd_multi(&b, i), 0, 1, false),
                    group(fp_upd_eq(&b, i), 1, 1, false),
                ],
            });
        }
        // Location reporting: auth (picn+fp select pair), read, report.
        for j in 0..3 {
            workflows.push(WorkflowSpec {
                name: format!("location-report-{j}"),
                weight: 1.4,
                groups: vec![
                    group(picn_sel(&b, j), 1, 1, false),
                    group(fp_sel_range(&b, j, 2, 3), 1, 1, false),
                    group(loc_rm_sel_common.clone(), 1, 3, true),
                    group(loc_ins_range(&b, "loc_rmf", 1, 1), 1, 1, false),
                    group(loc_ins_range(&b, "loc_rm", 1, 1), 1, 1, false),
                ],
            });
            workflows.push(WorkflowSpec {
                name: format!("picn-batch-{j}"),
                weight: 0.1,
                groups: vec![
                    group(picn_ins_range(&b, j, 2, 5), 1, 3, true),
                    group(picn_sel(&b, j), 1, 1, false),
                    group(picn_upd(&b, j), 0, 2, true),
                ],
            });
        }
        // Device-record audits and maintenance on loc_rm / loc_rmf.
        workflows.push(WorkflowSpec {
            name: "rm-audit".into(),
            weight: 0.1,
            groups: vec![
                group(loc_rm_sel_rare.clone(), 1, 3, true),
                group(loc_rmf_sel.clone(), 1, 2, true),
            ],
        });
        workflows.push(WorkflowSpec {
            name: "rm-batch".into(),
            weight: 0.06,
            groups: vec![
                group(loc_ins_range(&b, "loc_rm", 2, 5), 1, 3, true),
                group(loc_ins_range(&b, "loc_rmf", 2, 5), 1, 2, true),
            ],
        });
        workflows.push(WorkflowSpec {
            name: "rm-maintenance".into(),
            weight: 0.1,
            groups: vec![
                group(loc_rm_sel_common.clone(), 1, 1, false),
                group(vec![del_rm_dev], 1, 1, false),
            ],
        });
        let other_deletes = b.ids(|t| t.kind() == OpKind::Delete && t.id != del_rm_dev);
        workflows.push(WorkflowSpec {
            name: "purge".into(),
            weight: 0.05,
            groups: vec![
                group(
                    b.ids(|t| {
                        t.table == "loc_rmf" && t.kind() == OpKind::Select && t.weight >= 0.5
                    }),
                    1,
                    1,
                    false,
                ),
                group(other_deletes, 1, 2, true),
            ],
        });

        ScenarioSpec {
            name: "location-service",
            tables,
            templates: b.templates,
            workflows,
            users: (0..40)
                .map(|u| (format!("svc{u}"), format!("10.1.{u}.1")))
                .collect(),
            avg_session_len: 129,
            multi_task_rate: 0.03,
            default_train_sessions: 3722,
        }
    }
}

fn svec(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

/// Incremental template-pool builder used by the scenario constructors.
struct TemplateBuilder {
    templates: Vec<StatementTemplate>,
}

impl TemplateBuilder {
    fn new() -> Self {
        TemplateBuilder {
            templates: Vec::new(),
        }
    }

    fn push(&mut self, table: &str, shape: TemplateShape, weight: f32) -> usize {
        let id = self.templates.len();
        self.templates.push(StatementTemplate {
            id,
            table: table.to_string(),
            shape,
            weight,
        });
        id
    }

    fn select(
        &mut self,
        table: &str,
        projection: Option<&[&str]>,
        preds: &[(&str, PredShape)],
        weight: f32,
    ) -> usize {
        self.push(
            table,
            TemplateShape::Select {
                projection: projection.map(svec),
                preds: preds.iter().map(|(c, p)| (c.to_string(), *p)).collect(),
            },
            weight,
        )
    }

    fn insert(&mut self, table: &str, cols: &[&str], tuples: usize, weight: f32) -> usize {
        self.push(
            table,
            TemplateShape::Insert {
                cols: svec(cols),
                tuples,
            },
            weight,
        )
    }

    fn update(
        &mut self,
        table: &str,
        set_cols: &[&str],
        preds: &[(&str, PredShape)],
        weight: f32,
    ) -> usize {
        self.push(
            table,
            TemplateShape::Update {
                set_cols: svec(set_cols),
                preds: preds.iter().map(|(c, p)| (c.to_string(), *p)).collect(),
            },
            weight,
        )
    }

    fn delete(&mut self, table: &str, preds: &[(&str, PredShape)], weight: f32) -> usize {
        self.push(
            table,
            TemplateShape::Delete {
                preds: preds.iter().map(|(c, p)| (c.to_string(), *p)).collect(),
            },
            weight,
        )
    }

    fn ids(&self, pred: impl Fn(&StatementTemplate) -> bool) -> Vec<usize> {
        self.templates
            .iter()
            .filter(|t| pred(t))
            .map(|t| t.id)
            .collect()
    }
}

/// A generated session annotated with its interchangeable spans, which the
/// V2 (partial-swap) mutation uses as its "manually verified safe to swap"
/// set.
#[derive(Debug, Clone)]
pub struct AnnotatedSession {
    /// The session.
    pub session: Session,
    /// `(start, len)` spans of order-free operation runs.
    pub swap_spans: Vec<(usize, usize)>,
}

/// Maximum rows kept per table between sessions; the generator truncates
/// larger tables directly in the engine (maintenance that does not appear in
/// the audit log), keeping generation O(sessions).
const TABLE_ROW_CAP: usize = 500;

/// Workflow-driven session generator executing against the audited database.
pub struct SessionGenerator {
    spec: ScenarioSpec,
    adb: AuditedDatabase,
    next_session_id: u64,
    next_day: u64,
}

impl SessionGenerator {
    /// Creates a generator (and the scenario's tables) for `spec`.
    pub fn new(spec: ScenarioSpec) -> Self {
        let mut db = Database::new();
        for t in &spec.tables {
            let cols: Vec<&str> = t.columns.iter().map(String::as_str).collect();
            db.create_table(&t.name, &cols);
        }
        SessionGenerator {
            spec,
            adb: AuditedDatabase::new(db, 0),
            next_session_id: 1,
            next_day: 0,
        }
    }

    /// The scenario specification.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Generates one normal session.
    pub fn normal_session(&mut self, rng: &mut impl Rng) -> AnnotatedSession {
        let avg = self.spec.avg_session_len as f32;
        let target = (avg * rng.gen_range(0.75..1.25)).round().max(6.0) as usize;
        let (user, ip) = self.pick_user(rng);
        self.session_from_workflows(rng, &user, &ip, target, BUSINESS_HOURS)
    }

    /// A policy-violating noise session: unknown address and off-hours
    /// access (removed by the ABAC stage of preprocessing). Attackers come
    /// from varied addresses, so each violating pair stays below the
    /// policy-learning support threshold.
    pub fn noise_policy_violation(&mut self, rng: &mut impl Rng) -> AnnotatedSession {
        let (user, _) = self.pick_user(rng);
        let ip = format!("198.51.100.{}", rng.gen_range(1..255));
        let target = (self.spec.avg_session_len / 2).max(6);
        self.session_from_workflows(rng, &user, &ip, target, ODD_HOURS)
    }

    /// A structureless noise session of randomly drawn templates (removed by
    /// the DBSCAN stage of preprocessing).
    pub fn noise_rare_pattern(&mut self, rng: &mut impl Rng) -> AnnotatedSession {
        let (user, ip) = self.pick_user(rng);
        let n = self.spec.avg_session_len.max(8);
        let len = rng.gen_range(n / 2..=n);
        let pool: Vec<usize> = (0..self.spec.templates.len()).collect();
        let ids: Vec<usize> = (0..len)
            .map(|_| *pool.choose(rng).expect("non-empty pool"))
            .collect();
        self.emit(rng, &user, &ip, &ids, Vec::new(), BUSINESS_HOURS)
    }

    /// A too-short noise session (removed by the session-length filter).
    pub fn noise_short(&mut self, rng: &mut impl Rng) -> AnnotatedSession {
        let (user, ip) = self.pick_user(rng);
        let wf = self.pick_workflow(rng);
        let ids: Vec<usize> = wf
            .groups
            .first()
            .map(|g| {
                let picks = rng.gen_range(1..=2.min(g.max_picks.max(1)));
                (0..picks)
                    .filter_map(|_| g.pool.choose(rng).copied())
                    .collect()
            })
            .unwrap_or_default();
        self.emit(rng, &user, &ip, &ids, Vec::new(), BUSINESS_HOURS)
    }

    /// Generates a session directly from explicit template ids (used by the
    /// anomaly synthesizers).
    pub fn session_from_templates(
        &mut self,
        rng: &mut impl Rng,
        template_ids: &[usize],
    ) -> AnnotatedSession {
        let (user, ip) = self.pick_user(rng);
        self.emit(rng, &user, &ip, template_ids, Vec::new(), BUSINESS_HOURS)
    }

    /// Re-instantiates and executes an explicit template-id sequence under a
    /// specific identity (used by case-study replays).
    pub fn session_for_user(
        &mut self,
        rng: &mut impl Rng,
        user: &str,
        ip: &str,
        template_ids: &[usize],
    ) -> AnnotatedSession {
        self.emit(rng, user, ip, template_ids, Vec::new(), BUSINESS_HOURS)
    }

    fn pick_user(&self, rng: &mut impl Rng) -> (String, String) {
        let (u, ip) = self.spec.users.choose(rng).expect("users non-empty");
        (u.clone(), ip.clone())
    }

    fn pick_workflow(&self, rng: &mut impl Rng) -> WorkflowSpec {
        let total: f32 = self.spec.workflows.iter().map(|w| w.weight).sum();
        let mut x = rng.gen_range(0.0..total);
        for w in &self.spec.workflows {
            if x < w.weight {
                return w.clone();
            }
            x -= w.weight;
        }
        self.spec
            .workflows
            .last()
            .expect("workflows non-empty")
            .clone()
    }

    fn session_from_workflows(
        &mut self,
        rng: &mut impl Rng,
        user: &str,
        ip: &str,
        target_len: usize,
        hours: (u64, u64),
    ) -> AnnotatedSession {
        let mut ids: Vec<usize> = Vec::with_capacity(target_len + 8);
        let mut spans = Vec::new();
        // Sessions are thematic: one database access serves one task (or a
        // small mix), so each session draws from 1-3 workflow types and
        // repeats them. Beyond realism, this is what gives the paper's
        // negative sampling its signal — keys foreign to a session's task
        // mix are exactly the negatives Trans-DAS learns to score down.
        // Mostly single-task sessions: the per-session distinct-key count
        // stays near the top-p detection budget, as in the paper's traces.
        let n_types = {
            let x: f64 = rng.gen();
            let n = if x < 1.0 - self.spec.multi_task_rate {
                1
            } else {
                2
            };
            n.min(self.spec.workflows.len())
        };
        let mut theme: Vec<WorkflowSpec> = Vec::new();
        let mut guard = 0;
        while theme.len() < n_types && guard < 100 {
            guard += 1;
            let wf = self.pick_workflow(rng);
            if !theme.iter().any(|c| c.name == wf.name) {
                theme.push(wf);
            }
        }
        while ids.len() < target_len {
            let wf = theme.choose(rng).expect("theme non-empty").clone();
            for g in &wf.groups {
                if g.pool.is_empty() {
                    continue;
                }
                let picks = rng.gen_range(g.min_picks..=g.max_picks);
                if picks == 0 {
                    continue;
                }
                let start = ids.len();
                for _ in 0..picks {
                    // Weighted draw from the group pool.
                    let total: f32 = g
                        .pool
                        .iter()
                        .map(|&id| self.spec.templates[id].weight)
                        .sum();
                    let mut x = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
                    let mut chosen = g.pool[g.pool.len() - 1];
                    for &id in &g.pool {
                        let w = self.spec.templates[id].weight;
                        if x < w {
                            chosen = id;
                            break;
                        }
                        x -= w;
                    }
                    ids.push(chosen);
                }
                if g.interchangeable && picks > 1 {
                    spans.push((start, picks));
                }
            }
        }
        self.emit(rng, user, ip, &ids, spans, hours)
    }

    fn emit(
        &mut self,
        rng: &mut impl Rng,
        user: &str,
        ip: &str,
        template_ids: &[usize],
        swap_spans: Vec<(usize, usize)>,
        hours: (u64, u64),
    ) -> AnnotatedSession {
        let session_id = self.next_session_id;
        self.next_session_id += 1;
        // Spread sessions over days at the requested hour band.
        let day = self.next_day;
        self.next_day += 1;
        let hour = rng.gen_range(hours.0..hours.1);
        let start = day * 86_400 + hour * 3_600 + rng.gen_range(0..3_000);
        // AuditedDatabase owns a monotone clock; jump it to this session's
        // start (sessions are generated sequentially, detection groups by
        // session id, so absolute interleaving does not matter).
        let now = self.adb.now();
        self.adb.advance_clock(start.saturating_sub(now));
        let ctx = SessionContext {
            user: user.to_string(),
            client_ip: ip.to_string(),
            session_id,
        };
        let log_start = self.adb.log.len();
        for &tid in template_ids {
            let stmt = self.spec.templates[tid].instantiate(rng);
            self.adb
                .execute(&ctx, &stmt)
                .expect("scenario templates must be schema-consistent");
            self.adb.advance_clock(rng.gen_range(1..20));
        }
        let ops: Vec<Operation> = self.adb.log.records()[log_start..]
            .iter()
            .map(|r| Operation {
                sql: r.sql.clone(),
                table: r.table.clone(),
                kind: r.op,
                timestamp: r.timestamp,
            })
            .collect();
        self.truncate_large_tables();
        AnnotatedSession {
            session: Session {
                id: session_id,
                user: user.to_string(),
                client_ip: ip.to_string(),
                ops,
            },
            swap_spans,
        }
    }

    /// Engine-level maintenance (not audited): keeps table scans bounded.
    fn truncate_large_tables(&mut self) {
        let names: Vec<String> = self.adb.db.table_names().map(str::to_string).collect();
        for name in names {
            if self.adb.db.table(&name).map(Table::row_count).unwrap_or(0) > TABLE_ROW_CAP {
                let stmt = ucad_dbsim::Statement::Delete {
                    table: name,
                    conditions: vec![],
                };
                let _ = self.adb.db.execute(&stmt);
            }
        }
    }
}

use ucad_dbsim::Table;

/// Normal working hours (8:00-20:00).
const BUSINESS_HOURS: (u64, u64) = (8, 20);
/// Off-hours band used by policy-violating noise (0:00-5:00).
const ODD_HOURS: (u64, u64) = (0, 5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn commenting_spec_matches_table1_key_counts() {
        let spec = ScenarioSpec::commenting();
        assert_eq!(spec.tables.len(), 7);
        assert_eq!(spec.templates.len(), 20);
        assert_eq!(spec.key_counts(), (7, 4, 4, 5));
    }

    #[test]
    fn location_spec_matches_table1_key_counts() {
        let spec = ScenarioSpec::location_service();
        assert_eq!(spec.tables.len(), 15);
        assert_eq!(spec.templates.len(), 593);
        let (s, i, u, d) = spec.key_counts();
        assert_eq!((s, u, d), (238, 146, 4));
        assert_eq!(s + i + u + d, 593);
    }

    #[test]
    fn template_ids_are_dense_and_consistent() {
        for spec in [ScenarioSpec::commenting(), ScenarioSpec::location_service()] {
            for (i, t) in spec.templates.iter().enumerate() {
                assert_eq!(t.id, i);
            }
            // Every workflow pool references valid ids.
            for wf in &spec.workflows {
                for g in &wf.groups {
                    assert!(g.min_picks <= g.max_picks, "bad picks in {}", wf.name);
                    for &id in &g.pool {
                        assert!(id < spec.templates.len());
                    }
                }
            }
        }
    }

    #[test]
    fn every_template_is_reachable_via_some_workflow() {
        // A3 misoperations must be rare *known* operations, so every
        // statement key has to be producible by normal traffic.
        for spec in [ScenarioSpec::commenting(), ScenarioSpec::location_service()] {
            let mut reachable = vec![false; spec.templates.len()];
            for wf in &spec.workflows {
                for g in &wf.groups {
                    for &id in &g.pool {
                        reachable[id] = true;
                    }
                }
            }
            let missing: Vec<usize> = reachable
                .iter()
                .enumerate()
                .filter(|(_, &r)| !r)
                .map(|(i, _)| i)
                .collect();
            assert!(
                missing.is_empty(),
                "{}: {} unreachable templates, e.g. {:?}",
                spec.name,
                missing.len(),
                &missing[..missing.len().min(5)]
            );
        }
    }

    #[test]
    fn normal_sessions_have_calibrated_length() {
        let mut g = SessionGenerator::new(ScenarioSpec::commenting());
        let mut rng = StdRng::seed_from_u64(7);
        let sessions: Vec<_> = (0..50).map(|_| g.normal_session(&mut rng)).collect();
        let avg: f32 =
            sessions.iter().map(|s| s.session.len() as f32).sum::<f32>() / sessions.len() as f32;
        assert!(
            (avg - 24.0).abs() < 8.0,
            "average session length {} too far from 24",
            avg
        );
        // Sessions execute real SQL: every op parses.
        for s in &sessions {
            for op in &s.session.ops {
                assert!(
                    ucad_dbsim::parse(&op.sql).is_ok(),
                    "unparseable op: {}",
                    op.sql
                );
            }
        }
    }

    #[test]
    fn swap_spans_are_in_bounds() {
        let mut g = SessionGenerator::new(ScenarioSpec::commenting());
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let s = g.normal_session(&mut rng);
            for &(start, len) in &s.swap_spans {
                assert!(len >= 2);
                assert!(start + len <= s.session.len());
            }
        }
    }

    #[test]
    fn timestamps_are_monotone_within_session() {
        let mut g = SessionGenerator::new(ScenarioSpec::location_service());
        let mut rng = StdRng::seed_from_u64(9);
        let s = g.normal_session(&mut rng).session;
        for w in s.ops.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert!(
            s.len() >= 60,
            "location sessions should be long, got {}",
            s.len()
        );
    }

    #[test]
    fn policy_violation_uses_unknown_address_and_odd_hours() {
        let mut g = SessionGenerator::new(ScenarioSpec::commenting());
        let mut rng = StdRng::seed_from_u64(10);
        let s = g.noise_policy_violation(&mut rng).session;
        assert!(
            s.client_ip.starts_with("198.51.100."),
            "unexpected noise ip {}",
            s.client_ip
        );
        let hour = (s.ops[0].timestamp % 86_400) / 3_600;
        assert!(hour < 6, "expected off-hours start, got hour {hour}");
    }

    #[test]
    fn short_noise_sessions_are_short() {
        let mut g = SessionGenerator::new(ScenarioSpec::commenting());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let s = g.noise_short(&mut rng).session;
            assert!(s.len() <= 4, "short session of length {}", s.len());
        }
    }

    #[test]
    fn rare_templates_exist_for_misoperation_synthesis() {
        let spec = ScenarioSpec::commenting();
        assert!(!spec.rare_template_ids(0.2).is_empty());
        let spec = ScenarioSpec::location_service();
        assert!(spec.rare_template_ids(0.1).len() >= 10);
    }
}
