//! # ucad-trace
//!
//! Synthetic trace substrate for the UCAD reproduction.
//!
//! The paper evaluates on proprietary production traces from two database
//! application scenarios plus three public system-log datasets; none of
//! those are redistributable, so this crate generates statistically
//! calibrated stand-ins:
//!
//! * [`scenario`] — workflow-driven session generators for Scenario-I
//!   (commenting application) and Scenario-II (location service), calibrated
//!   to Table 1 of the paper and executed against the [`ucad_dbsim`] engine.
//! * [`anomaly`] — the A1/A2/A3 anomaly synthesis recipes of §6.1.
//! * [`mutate`] — the V2 (partial-swap) and V3 (partial-remove) normal
//!   mutations of §6.1.
//! * [`dataset`] — train/test assembly, raw (noisy) logs for preprocessing,
//!   and contaminated training sets for the §6.5 robustness study.
//! * [`syslog`] — HDFS/BGL/Thunderbird-like log generators for the §6.6
//!   transferability experiments.

#![warn(missing_docs)]

pub mod anomaly;
pub mod dataset;
pub mod mutate;
pub mod scenario;
pub mod session;
pub mod syslog;
pub mod template;

pub use anomaly::AnomalySynthesizer;
pub use dataset::{generate_raw_log, RawLog, ScenarioDataset};
pub use scenario::{AnnotatedSession, ScenarioSpec, SessionGenerator};
pub use session::{AnomalyKind, LabeledSession, Operation, Session};
pub use syslog::{EventSession, LogDataset, SyslogSpec};
pub use template::{PredShape, StatementTemplate, TemplateShape};
