//! Abnormal-session synthesis following §6.1 of the paper.
//!
//! Real anomalies are rare, so the paper synthesizes the three threat-model
//! classes from normal material:
//! * **A1 privilege abuse** — combine repeated or randomly chosen `SELECT`
//!   operations with a normal session.
//! * **A2 credential stealing** — insert `DELETE` and other irrelevant
//!   operations into a normal session, keeping the injection below 10% of the
//!   original length so the anomaly stays stealthy.
//! * **A3 misoperations** — randomly combine rarely performed operations.

use crate::scenario::{ScenarioSpec, SessionGenerator};
use crate::session::{AnomalyKind, LabeledSession, Operation, Session};
use rand::seq::SliceRandom;
use rand::Rng;

/// Weight threshold below which a template counts as "rarely performed".
pub const RARE_WEIGHT_THRESHOLD: f32 = 0.2;

/// Synthesizes the A1/A2/A3 abnormal sets from normal V1 sessions.
pub struct AnomalySynthesizer<'a> {
    spec: &'a ScenarioSpec,
    select_pool: Vec<usize>,
    delete_pool: Vec<usize>,
    rare_pool: Vec<usize>,
}

impl<'a> AnomalySynthesizer<'a> {
    /// Builds template pools from the scenario.
    pub fn new(spec: &'a ScenarioSpec) -> Self {
        let rare_pool = {
            let r = spec.rare_template_ids(RARE_WEIGHT_THRESHOLD);
            if r.is_empty() {
                // Degenerate specs: fall back to the least frequent quartile.
                let mut ids: Vec<usize> = (0..spec.templates.len()).collect();
                ids.sort_by(|&a, &b| {
                    spec.templates[a]
                        .weight
                        .partial_cmp(&spec.templates[b].weight)
                        .expect("weights are finite")
                });
                ids.truncate((ids.len() / 4).max(1));
                ids
            } else {
                r
            }
        };
        AnomalySynthesizer {
            spec,
            select_pool: spec.select_template_ids(),
            delete_pool: spec.delete_template_ids(),
            rare_pool,
        }
    }

    /// A1: privilege abuse. Interleaves a burst of repeated/random `SELECT`s
    /// (≈35% of the session, at least 6) into a normal session — the abuser
    /// retrieves far more data than the session's business task needs.
    pub fn privilege_abuse(
        &self,
        base: &Session,
        gen: &mut SessionGenerator,
        rng: &mut impl Rng,
    ) -> LabeledSession {
        let extra = ((base.len() as f32 * 0.35).ceil() as usize).max(6);
        // "repeatedly or randomly chosen": half the time repeat one select,
        // half the time draw independently.
        let repeat_one = rng.gen_bool(0.5);
        let fixed = *self.select_pool.choose(rng).expect("selects exist");
        let inject: Vec<usize> = (0..extra)
            .map(|_| {
                if repeat_one {
                    fixed
                } else {
                    *self.select_pool.choose(rng).expect("selects exist")
                }
            })
            .collect();
        let session = splice(base, &inject, gen, rng, SpliceMode::TailBurst);
        LabeledSession::abnormal(session, AnomalyKind::PrivilegeAbuse)
    }

    /// A2: credential stealing. Randomly inserts deletes plus irrelevant
    /// rare operations, bounded by 10% of the original length.
    pub fn credential_stealing(
        &self,
        base: &Session,
        gen: &mut SessionGenerator,
        rng: &mut impl Rng,
    ) -> LabeledSession {
        let budget = ((base.len() as f32 * 0.10).floor() as usize).max(1);
        let inject: Vec<usize> = (0..budget)
            .map(|i| {
                if i == 0 || rng.gen_bool(0.6) {
                    *self.delete_pool.choose(rng).expect("deletes exist")
                } else {
                    *self.rare_pool.choose(rng).expect("rare pool non-empty")
                }
            })
            .collect();
        let session = splice(base, &inject, gen, rng, SpliceMode::Scattered);
        LabeledSession::abnormal(session, AnomalyKind::CredentialStealing)
    }

    /// A3: misoperations. Builds a session purely out of rarely performed
    /// operations combined at random.
    pub fn misoperation(&self, gen: &mut SessionGenerator, rng: &mut impl Rng) -> LabeledSession {
        let len = (self.spec.avg_session_len / 2).max(6);
        let ids: Vec<usize> = (0..len)
            .map(|_| *self.rare_pool.choose(rng).expect("rare pool non-empty"))
            .collect();
        let annotated = gen.session_from_templates(rng, &ids);
        LabeledSession::abnormal(annotated.session, AnomalyKind::Misoperation)
    }
}

enum SpliceMode {
    /// Injected ops are scattered uniformly across the session (A2).
    Scattered,
    /// Injected ops form a burst in the tail half of the session (A1).
    TailBurst,
}

/// Inserts instantiations of `inject` templates into a copy of `base` and
/// regenerates timestamps so the result is still monotone.
fn splice(
    base: &Session,
    inject: &[usize],
    gen: &mut SessionGenerator,
    rng: &mut impl Rng,
    mode: SpliceMode,
) -> Session {
    // Instantiate injected templates through the generator so they execute
    // against the engine like every other op.
    let fresh = gen.session_for_user(rng, &base.user, &base.client_ip, inject);
    let mut ops: Vec<Operation> = base.ops.clone();
    let positions: Vec<usize> = match mode {
        SpliceMode::Scattered => (0..inject.len())
            .map(|_| rng.gen_range(0..=ops.len()))
            .collect(),
        SpliceMode::TailBurst => {
            let anchor = rng.gen_range(ops.len() / 2..=ops.len());
            vec![anchor; inject.len()]
        }
    };
    for (mut op, pos) in fresh.session.ops.into_iter().zip(positions) {
        let pos = pos.min(ops.len());
        // Keep timestamps locally plausible: inherit the neighbour's time.
        op.timestamp = if pos == 0 {
            ops.first().map(|o| o.timestamp).unwrap_or(op.timestamp)
        } else {
            ops[pos - 1].timestamp + 1
        };
        ops.insert(pos, op);
    }
    // Re-monotonize timestamps after insertion.
    for i in 1..ops.len() {
        if ops[i].timestamp < ops[i - 1].timestamp {
            ops[i].timestamp = ops[i - 1].timestamp + 1;
        }
    }
    Session {
        id: base.id | (1 << 62), // distinct id space for synthesized sessions
        user: base.user.clone(),
        client_ip: base.client_ip.clone(),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ucad_dbsim::OpKind;

    fn setup() -> (ScenarioSpec, SessionGenerator, StdRng) {
        let spec = ScenarioSpec::commenting();
        let gen = SessionGenerator::new(spec.clone());
        (spec, gen, StdRng::seed_from_u64(21))
    }

    #[test]
    fn a1_adds_selects_only() {
        let (spec, mut gen, mut rng) = setup();
        let synth = AnomalySynthesizer::new(&spec);
        let base = gen.normal_session(&mut rng).session;
        let a1 = synth.privilege_abuse(&base, &mut gen, &mut rng);
        assert_eq!(a1.label, Some(AnomalyKind::PrivilegeAbuse));
        assert!(a1.session.len() > base.len());
        let added = a1.session.len() - base.len();
        assert!(added >= 6);
        // All added ops are selects.
        let selects_before = base.ops.iter().filter(|o| o.kind == OpKind::Select).count();
        let selects_after = a1
            .session
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Select)
            .count();
        assert_eq!(selects_after - selects_before, added);
    }

    #[test]
    fn a2_injection_is_stealthy() {
        let (spec, mut gen, mut rng) = setup();
        let synth = AnomalySynthesizer::new(&spec);
        for _ in 0..10 {
            let base = gen.normal_session(&mut rng).session;
            let a2 = synth.credential_stealing(&base, &mut gen, &mut rng);
            let added = a2.session.len() - base.len();
            assert!(added >= 1);
            assert!(
                added as f32 <= (base.len() as f32 * 0.10).max(1.0),
                "A2 injected {} ops into a session of {}",
                added,
                base.len()
            );
            // At least one injected op is a delete.
            let del_before = base.ops.iter().filter(|o| o.kind == OpKind::Delete).count();
            let del_after = a2
                .session
                .ops
                .iter()
                .filter(|o| o.kind == OpKind::Delete)
                .count();
            assert!(del_after > del_before);
        }
    }

    #[test]
    fn a3_uses_only_rare_templates() {
        let (spec, mut gen, mut rng) = setup();
        let synth = AnomalySynthesizer::new(&spec);
        let a3 = synth.misoperation(&mut gen, &mut rng);
        assert_eq!(a3.label, Some(AnomalyKind::Misoperation));
        assert!(a3.session.len() >= 6);
        // Every op's table/kind pair corresponds to some rare template.
        let rare: Vec<_> = spec
            .rare_template_ids(RARE_WEIGHT_THRESHOLD)
            .into_iter()
            .map(|id| (spec.templates[id].table.clone(), spec.templates[id].kind()))
            .collect();
        for op in &a3.session.ops {
            assert!(
                rare.iter().any(|(t, k)| *t == op.table && *k == op.kind),
                "op not from rare pool: {}",
                op.sql
            );
        }
    }

    #[test]
    fn splice_preserves_timestamp_monotonicity() {
        let (spec, mut gen, mut rng) = setup();
        let synth = AnomalySynthesizer::new(&spec);
        for _ in 0..5 {
            let base = gen.normal_session(&mut rng).session;
            let a2 = synth.credential_stealing(&base, &mut gen, &mut rng);
            for w in a2.session.ops.windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp);
            }
        }
    }

    #[test]
    fn synthesized_ids_do_not_collide_with_normals() {
        let (spec, mut gen, mut rng) = setup();
        let synth = AnomalySynthesizer::new(&spec);
        let base = gen.normal_session(&mut rng).session;
        let a1 = synth.privilege_abuse(&base, &mut gen, &mut rng);
        assert_ne!(a1.session.id, base.id);
    }
}
