//! DBSCAN over a precomputed distance function (§5.1 uses DBSCAN on Jaccard
//! distances to find arbitrarily shaped clusters of session profiles).

/// Cluster assignment: `Cluster(i)` or `Noise`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Member of cluster `i` (0-based).
    Cluster(usize),
    /// Density-unreachable point.
    Noise,
}

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct DbscanParams {
    /// Neighborhood radius (on the distance scale, typically 1 - Jaccard).
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        // Defaults tuned for Jaccard distance over bigram session profiles:
        // same-task sessions land within ~0.25 of each other, while sessions
        // sharing only part of their task mix sit beyond ~0.5 — eps between
        // the two separates task patterns instead of density-chaining them
        // into one giant cluster.
        DbscanParams {
            eps: 0.3,
            min_pts: 3,
        }
    }
}

/// Runs DBSCAN over `n` items with pairwise distance `dist`.
/// Returns one [`Assignment`] per item and the number of clusters found.
pub fn dbscan(
    n: usize,
    params: DbscanParams,
    dist: impl Fn(usize, usize) -> f64,
) -> (Vec<Assignment>, usize) {
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut cluster = 0usize;

    let neighbors =
        |p: usize| -> Vec<usize> { (0..n).filter(|&q| dist(p, q) <= params.eps).collect() };

    for p in 0..n {
        if labels[p] != UNVISITED {
            continue;
        }
        let nbrs = neighbors(p);
        if nbrs.len() < params.min_pts {
            labels[p] = NOISE;
            continue;
        }
        labels[p] = cluster;
        // Expand the cluster with a work queue.
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let q = queue[qi];
            qi += 1;
            if labels[q] == NOISE {
                labels[q] = cluster; // border point
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster;
            let q_nbrs = neighbors(q);
            if q_nbrs.len() >= params.min_pts {
                queue.extend(q_nbrs);
            }
        }
        cluster += 1;
    }

    let assignments = labels
        .into_iter()
        .map(|l| {
            if l == NOISE {
                Assignment::Noise
            } else {
                Assignment::Cluster(l)
            }
        })
        .collect();
    (assignments, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D points clustered by absolute distance.
    fn run(points: &[f64], eps: f64, min_pts: usize) -> (Vec<Assignment>, usize) {
        let pts = points.to_vec();
        dbscan(pts.len(), DbscanParams { eps, min_pts }, move |a, b| {
            (pts[a] - pts[b]).abs()
        })
    }

    #[test]
    fn two_blobs_and_an_outlier() {
        let points = [0.0, 0.1, 0.2, 5.0, 5.1, 5.2, 100.0];
        let (labels, k) = run(&points, 0.5, 2);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[6], Assignment::Noise);
    }

    #[test]
    fn all_noise_when_min_pts_too_high() {
        let points = [0.0, 10.0, 20.0];
        let (labels, k) = run(&points, 0.5, 2);
        assert_eq!(k, 0);
        assert!(labels.iter().all(|&l| l == Assignment::Noise));
    }

    #[test]
    fn single_cluster_when_eps_large() {
        let points = [0.0, 1.0, 2.0, 3.0];
        let (labels, k) = run(&points, 10.0, 2);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == Assignment::Cluster(0)));
    }

    #[test]
    fn chain_reachability_merges_into_one_cluster() {
        // Density-connected chain: consecutive gaps within eps.
        let points = [0.0, 0.4, 0.8, 1.2, 1.6];
        let (labels, k) = run(&points, 0.5, 2);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == Assignment::Cluster(0)));
    }

    #[test]
    fn border_points_join_a_cluster() {
        // 1.0 is within eps of the dense blob edge but is not itself core.
        let points = [0.0, 0.1, 0.2, 0.6];
        let (labels, k) = run(&points, 0.45, 3);
        assert_eq!(k, 1);
        assert_eq!(labels[3], Assignment::Cluster(0));
    }

    #[test]
    fn empty_input() {
        let (labels, k) = dbscan(0, DbscanParams::default(), |_, _| 0.0);
        assert!(labels.is_empty());
        assert_eq!(k, 0);
    }
}
