//! Statement-key vocabulary (§5.1).
//!
//! Keys start at `k1`; key `k0` is reserved for padding and for statements
//! that first appear during detection (the paper's "newly appeared
//! statements" rule). The vocabulary built during training is frozen and
//! reused verbatim at detection time.

use crate::abstraction::abstract_statement;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use ucad_trace::Session;

/// Reserved key for padding and unseen statements.
pub const UNKNOWN_KEY: u32 = 0;

/// A frozen mapping from abstract statements to integer keys.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    key_of: HashMap<String, u32>,
    template_of: Vec<String>,
}

impl Vocabulary {
    /// Builds a vocabulary from abstract statement templates, assigning keys
    /// in first-seen order starting from 1.
    pub fn from_templates<I: IntoIterator<Item = String>>(templates: I) -> Self {
        let mut v = Vocabulary::default();
        for t in templates {
            v.intern(t);
        }
        v
    }

    /// Builds a vocabulary from raw SQL sessions (abstracting each op).
    pub fn from_sessions(sessions: &[Session]) -> Self {
        let mut v = Vocabulary::default();
        for s in sessions {
            for op in &s.ops {
                v.intern(abstract_statement(&op.sql));
            }
        }
        v
    }

    /// Builds a vocabulary from pre-templated event sequences (system logs).
    pub fn from_event_sessions(sessions: &[Vec<String>]) -> Self {
        let mut v = Vocabulary::default();
        for s in sessions {
            for e in s {
                v.intern(e.clone());
            }
        }
        v
    }

    fn intern(&mut self, template: String) -> u32 {
        if let Some(&k) = self.key_of.get(&template) {
            return k;
        }
        let k = self.template_of.len() as u32 + 1;
        self.key_of.insert(template.clone(), k);
        self.template_of.push(template);
        k
    }

    /// Number of known keys (excluding the reserved `k0`).
    pub fn len(&self) -> usize {
        self.template_of.len()
    }

    /// True when no keys are known.
    pub fn is_empty(&self) -> bool {
        self.template_of.is_empty()
    }

    /// Total key-space size including `k0` — the embedding-table row count.
    pub fn key_space(&self) -> usize {
        self.template_of.len() + 1
    }

    /// Looks up an already-abstracted template. Unknown templates map to
    /// [`UNKNOWN_KEY`].
    pub fn key_of_template(&self, template: &str) -> u32 {
        self.key_of.get(template).copied().unwrap_or(UNKNOWN_KEY)
    }

    /// Abstracts and tokenizes one raw SQL statement.
    pub fn key_of_sql(&self, sql: &str) -> u32 {
        self.key_of_template(&abstract_statement(sql))
    }

    /// Tokenizes a raw SQL session into a key sequence.
    pub fn tokenize_session(&self, session: &Session) -> Vec<u32> {
        session
            .ops
            .iter()
            .map(|op| self.key_of_sql(&op.sql))
            .collect()
    }

    /// Tokenizes a templated event sequence.
    pub fn tokenize_events(&self, events: &[String]) -> Vec<u32> {
        events.iter().map(|e| self.key_of_template(e)).collect()
    }

    /// Template text for a key (None for `k0`/out-of-range).
    pub fn template(&self, key: u32) -> Option<&str> {
        if key == 0 {
            return None;
        }
        self.template_of.get(key as usize - 1).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_start_at_one_and_are_stable() {
        let v = Vocabulary::from_templates(vec![
            "A".to_string(),
            "B".to_string(),
            "A".to_string(),
            "C".to_string(),
        ]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.key_of_template("A"), 1);
        assert_eq!(v.key_of_template("B"), 2);
        assert_eq!(v.key_of_template("C"), 3);
        assert_eq!(v.key_of_template("D"), UNKNOWN_KEY);
        assert_eq!(v.key_space(), 4);
    }

    #[test]
    fn sql_statements_with_same_shape_share_a_key() {
        let v = Vocabulary::from_templates(vec![crate::abstraction::abstract_statement(
            "SELECT * FROM t WHERE a=1",
        )]);
        assert_eq!(v.key_of_sql("SELECT * FROM t WHERE a=1"), 1);
        assert_eq!(v.key_of_sql("SELECT * FROM t WHERE a=42"), 1);
        assert_eq!(v.key_of_sql("SELECT * FROM t WHERE b=42"), UNKNOWN_KEY);
    }

    #[test]
    fn template_lookup_roundtrips() {
        let v = Vocabulary::from_templates(vec!["X".into(), "Y".into()]);
        assert_eq!(v.template(1), Some("X"));
        assert_eq!(v.template(2), Some("Y"));
        assert_eq!(v.template(0), None);
        assert_eq!(v.template(9), None);
    }
}
