//! Clustering-based noise removal and pattern balancing (§5.1).
//!
//! After policy filtering, sessions are profiled with n-grams, clustered
//! with DBSCAN under Jaccard distance, and then:
//! 1. large clusters are randomly under-sampled toward the median cluster
//!    size (pattern balancing),
//! 2. clusters far below the median size are removed (rare patterns),
//! 3. sessions much shorter than their cluster's average length are removed
//!    (too short to reveal contextual intent).

use crate::dbscan::{dbscan, Assignment, DbscanParams};
use crate::ngram::NgramProfile;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cleaning configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CleanerConfig {
    /// Gram size for session profiles.
    pub ngram: usize,
    /// DBSCAN parameters over Jaccard distance.
    pub dbscan: DbscanParams,
    /// Remove clusters smaller than `small_cluster_frac * median_size`.
    pub small_cluster_frac: f64,
    /// Remove sessions shorter than `short_session_frac * cluster_avg_len`.
    pub short_session_frac: f64,
    /// Under-sample clusters larger than the median size.
    pub balance: bool,
    /// Floor on balancing: an under-sampled cluster keeps at least this
    /// fraction of its members (so balancing never guts the dominant
    /// pattern when cluster sizes are very skewed).
    pub min_keep_frac: f64,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            ngram: 2,
            dbscan: DbscanParams::default(),
            small_cluster_frac: 0.2,
            short_session_frac: 0.5,
            balance: true,
            min_keep_frac: 0.4,
        }
    }
}

/// Why a session was removed (or that it was kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanOutcome {
    /// Session survives cleaning.
    Kept,
    /// DBSCAN marked the session density-unreachable.
    NoiseCluster,
    /// The session's cluster was far smaller than the median.
    SmallCluster,
    /// The session was much shorter than its cluster average.
    TooShort,
    /// Random under-sampling of an oversized cluster dropped it.
    Undersampled,
}

/// Aggregate statistics of one cleaning pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleanStats {
    /// Sessions kept.
    pub kept: usize,
    /// Removed as DBSCAN noise.
    pub noise: usize,
    /// Removed with a small cluster.
    pub small_cluster: usize,
    /// Removed as too short.
    pub too_short: usize,
    /// Dropped by balancing.
    pub undersampled: usize,
    /// Number of DBSCAN clusters found.
    pub clusters: usize,
}

/// Cleans tokenized sessions; returns a per-session outcome plus stats.
pub fn clean_sessions(
    key_sessions: &[Vec<u32>],
    cfg: &CleanerConfig,
    rng: &mut impl Rng,
) -> (Vec<CleanOutcome>, CleanStats) {
    let n = key_sessions.len();
    let mut outcome = vec![CleanOutcome::Kept; n];
    let mut stats = CleanStats::default();
    if n == 0 {
        return (outcome, stats);
    }

    let profiles: Vec<NgramProfile> = {
        let _s = ucad_obs::span!("preprocess.ngram");
        key_sessions
            .iter()
            .map(|s| NgramProfile::new(s, cfg.ngram))
            .collect()
    };
    let (assignments, k) = {
        let _s = ucad_obs::span!("preprocess.dbscan");
        dbscan(n, cfg.dbscan, |a, b| profiles[a].distance(&profiles[b]))
    };
    stats.clusters = k;

    // Collect members per cluster; noise is removed outright.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, a) in assignments.iter().enumerate() {
        match a {
            Assignment::Cluster(c) => members[*c].push(i),
            Assignment::Noise => outcome[i] = CleanOutcome::NoiseCluster,
        }
    }

    if k > 0 {
        let mut sizes: Vec<usize> = members.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        // Lower median: with few clusters this errs toward balancing the
        // dominant pattern, which is the point of the under-sampling step.
        let median = sizes[(sizes.len() - 1) / 2].max(1);

        for cluster in &mut members {
            // (1) Balance: under-sample clusters above the median size,
            // keeping at least `min_keep_frac` of each cluster.
            let keep = median.max((cluster.len() as f64 * cfg.min_keep_frac) as usize);
            if cfg.balance && cluster.len() > keep {
                cluster.shuffle(rng);
                for &i in &cluster[keep..] {
                    outcome[i] = CleanOutcome::Undersampled;
                }
                cluster.truncate(keep);
            }
            // (2) Remove clusters far below the median size.
            if (cluster.len() as f64) < cfg.small_cluster_frac * median as f64 {
                for &i in cluster.iter() {
                    outcome[i] = CleanOutcome::SmallCluster;
                }
                continue;
            }
            // (3) Remove sessions much shorter than the cluster average.
            let avg_len: f64 = cluster
                .iter()
                .map(|&i| key_sessions[i].len() as f64)
                .sum::<f64>()
                / cluster.len().max(1) as f64;
            for &i in cluster.iter() {
                if (key_sessions[i].len() as f64) < cfg.short_session_frac * avg_len {
                    outcome[i] = CleanOutcome::TooShort;
                }
            }
        }
    }

    for o in &outcome {
        match o {
            CleanOutcome::Kept => stats.kept += 1,
            CleanOutcome::NoiseCluster => stats.noise += 1,
            CleanOutcome::SmallCluster => stats.small_cluster += 1,
            CleanOutcome::TooShort => stats.too_short += 1,
            CleanOutcome::Undersampled => stats.undersampled += 1,
        }
    }
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds m near-identical sessions around a base pattern.
    fn pattern_sessions(base: &[u32], m: usize) -> Vec<Vec<u32>> {
        (0..m)
            .map(|i| {
                let mut s = base.to_vec();
                // Minor variation: rotate by i % 2 (keeps most bigrams).
                if i % 2 == 1 {
                    s.push(base[0]);
                }
                s
            })
            .collect()
    }

    #[test]
    fn structureless_noise_is_removed() {
        let mut sessions = pattern_sessions(&[1, 2, 3, 4, 1, 2, 3, 4], 10);
        // One structureless outlier with disjoint bigrams.
        sessions.push(vec![9, 7, 8, 5, 6, 9, 5, 8]);
        let mut rng = StdRng::seed_from_u64(0);
        let (outcome, stats) = clean_sessions(&sessions, &CleanerConfig::default(), &mut rng);
        assert_eq!(outcome[10], CleanOutcome::NoiseCluster);
        assert!(stats.kept >= 8);
    }

    #[test]
    fn short_sessions_are_removed() {
        let mut sessions = pattern_sessions(&[1, 2, 3, 4, 1, 2, 3, 4], 10);
        sessions.push(vec![1, 2]); // same pattern but too short
        let mut rng = StdRng::seed_from_u64(1);
        let (outcome, _) = clean_sessions(&sessions, &CleanerConfig::default(), &mut rng);
        assert!(
            outcome[10] == CleanOutcome::TooShort || outcome[10] == CleanOutcome::NoiseCluster,
            "short session survived: {:?}",
            outcome[10]
        );
    }

    #[test]
    fn balancing_undersamples_the_dominant_pattern() {
        let mut sessions = pattern_sessions(&[1, 2, 3, 4, 1, 2, 3, 4], 40);
        sessions.extend(pattern_sessions(&[5, 6, 7, 8, 5, 6, 7, 8], 6));
        let mut rng = StdRng::seed_from_u64(2);
        let (outcome, stats) = clean_sessions(&sessions, &CleanerConfig::default(), &mut rng);
        assert!(stats.undersampled > 0, "expected under-sampling");
        // The small pattern must survive entirely.
        for o in &outcome[40..] {
            assert_eq!(*o, CleanOutcome::Kept);
        }
        // The dominant cluster is reduced to the keep floor
        // (max(median, 0.4 * 40) = 16), not left at full size.
        let kept_big = outcome[..40]
            .iter()
            .filter(|&&o| o == CleanOutcome::Kept)
            .count();
        assert!(kept_big <= 16, "dominant cluster not balanced: {kept_big}");
    }

    #[test]
    fn disabling_balance_keeps_everything_in_one_pattern() {
        let sessions = pattern_sessions(&[1, 2, 3, 4, 1, 2, 3, 4], 20);
        let cfg = CleanerConfig {
            balance: false,
            ..CleanerConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let (_, stats) = clean_sessions(&sessions, &cfg, &mut rng);
        assert_eq!(stats.kept, 20);
        assert_eq!(stats.undersampled, 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut rng = StdRng::seed_from_u64(4);
        let (outcome, stats) = clean_sessions(&[], &CleanerConfig::default(), &mut rng);
        assert!(outcome.is_empty());
        assert_eq!(stats, CleanStats::default());
    }

    #[test]
    fn stats_add_up() {
        let mut sessions = pattern_sessions(&[1, 2, 3, 4, 1, 2], 15);
        sessions.push(vec![9, 9, 9]);
        sessions.push(vec![1]);
        let mut rng = StdRng::seed_from_u64(5);
        let (outcome, stats) = clean_sessions(&sessions, &CleanerConfig::default(), &mut rng);
        let total =
            stats.kept + stats.noise + stats.small_cluster + stats.too_short + stats.undersampled;
        assert_eq!(total, outcome.len());
    }
}
