//! N-gram session profiles and Jaccard similarity (§5.1).
//!
//! Each session is profiled as the *set* of key n-grams it contains;
//! similarity between sessions is the Jaccard index of their profiles.
//! Sets (not multisets) keep the measure robust to the repeated-operation
//! noise the pipeline is trying to remove.

use std::collections::HashSet;

/// N-gram profile of one key sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NgramProfile {
    grams: HashSet<Vec<u32>>,
}

impl NgramProfile {
    /// Builds the profile of `keys` with gram size `n` (n >= 1). Sequences
    /// shorter than `n` are profiled by their full content as a single gram.
    pub fn new(keys: &[u32], n: usize) -> Self {
        assert!(n >= 1, "gram size must be >= 1");
        let mut grams = HashSet::new();
        if keys.len() < n {
            if !keys.is_empty() {
                grams.insert(keys.to_vec());
            }
        } else {
            for w in keys.windows(n) {
                grams.insert(w.to_vec());
            }
        }
        NgramProfile { grams }
    }

    /// Number of distinct grams.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// True when the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// Jaccard index between two profiles, in `[0, 1]`.
    /// Two empty profiles count as identical (1.0).
    pub fn jaccard(&self, other: &NgramProfile) -> f64 {
        if self.grams.is_empty() && other.grams.is_empty() {
            return 1.0;
        }
        let inter = self.grams.intersection(&other.grams).count();
        let union = self.grams.len() + other.grams.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Jaccard distance `1 - jaccard`, a metric on gram sets.
    pub fn distance(&self, other: &NgramProfile) -> f64 {
        1.0 - self.jaccard(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigram_profile_contents() {
        let p = NgramProfile::new(&[1, 2, 3, 2, 3], 2);
        // Distinct bigrams: (1,2), (2,3), (3,2).
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn identical_sequences_have_similarity_one() {
        let a = NgramProfile::new(&[1, 2, 3], 2);
        let b = NgramProfile::new(&[1, 2, 3], 2);
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn disjoint_sequences_have_similarity_zero() {
        let a = NgramProfile::new(&[1, 2], 2);
        let b = NgramProfile::new(&[3, 4], 2);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded() {
        let a = NgramProfile::new(&[1, 2, 3, 4], 2);
        let b = NgramProfile::new(&[3, 4, 5], 2);
        let ab = a.jaccard(&b);
        assert_eq!(ab, b.jaccard(&a));
        assert!((0.0..=1.0).contains(&ab));
        // grams a: (1,2),(2,3),(3,4); b: (3,4),(4,5); inter 1, union 4.
        assert!((ab - 0.25).abs() < 1e-12);
    }

    #[test]
    fn short_sequences_fall_back_to_whole_content() {
        let a = NgramProfile::new(&[7], 3);
        assert_eq!(a.len(), 1);
        let b = NgramProfile::new(&[7], 3);
        assert_eq!(a.jaccard(&b), 1.0);
        let empty = NgramProfile::new(&[], 2);
        assert!(empty.is_empty());
        assert_eq!(empty.jaccard(&empty), 1.0);
        assert_eq!(empty.jaccard(&a), 0.0);
    }

    #[test]
    fn unigrams_ignore_order() {
        let a = NgramProfile::new(&[1, 2, 3], 1);
        let b = NgramProfile::new(&[3, 1, 2, 2], 1);
        assert_eq!(a.jaccard(&b), 1.0);
    }
}
