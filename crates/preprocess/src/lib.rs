//! # ucad-preprocess
//!
//! The UCAD preprocessing module (§5.1): statement abstraction and
//! tokenization into keys, attribute-based access-control filtering, and
//! clustering-based noise removal / pattern balancing.
//!
//! The [`Preprocessor`] façade composes the stages exactly as the paper's
//! pipeline does:
//! 1. tokenize raw sessions against a vocabulary built from the training
//!    log ([`Vocabulary`]),
//! 2. drop sessions that violate access-control policies
//!    ([`AccessPolicy`]),
//! 3. profile the survivors with n-grams, cluster with DBSCAN under Jaccard
//!    distance, balance patterns and drop rare/short sessions
//!    ([`cleaner::clean_sessions`]).

#![warn(missing_docs)]

pub mod abstraction;
pub mod cleaner;
pub mod dbscan;
pub mod ngram;
pub mod policy;
pub mod vocab;

pub use abstraction::{abstract_literals, abstract_statement};
pub use cleaner::{clean_sessions, CleanOutcome, CleanStats, CleanerConfig};
pub use dbscan::{dbscan, Assignment, DbscanParams};
pub use ngram::NgramProfile;
pub use policy::{AccessPolicy, DenyRule, PolicyViolation};
pub use vocab::{Vocabulary, UNKNOWN_KEY};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use ucad_trace::Session;

/// Configuration of the full preprocessing pipeline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Minimum support for learned granting-policy attributes.
    pub policy_min_support: usize,
    /// Cleaning configuration (n-grams, DBSCAN, balancing, thresholds).
    pub cleaner: CleanerConfig,
    /// Whether to run the clustering/cleaning stage (the paper's pipeline
    /// always does; ablations can disable it).
    pub clean: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            policy_min_support: 2,
            cleaner: CleanerConfig::default(),
            clean: true,
        }
    }
}

/// Report of one training-time preprocessing pass.
#[derive(Debug, Clone, Default)]
pub struct PreprocessReport {
    /// Sessions rejected by access-control policies.
    pub policy_rejected: usize,
    /// Cleaning statistics of the clustering stage.
    pub clean_stats: CleanStats,
    /// Vocabulary size (distinct keys, excluding `k0`).
    pub vocab_size: usize,
}

/// Trained preprocessing state: frozen vocabulary plus learned policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Preprocessor {
    /// Frozen statement-key vocabulary.
    pub vocab: Vocabulary,
    /// Learned access-control policy set.
    pub policy: AccessPolicy,
    config: PreprocessConfig,
}

impl Preprocessor {
    /// Fits the preprocessor on a raw training log and returns the purified
    /// tokenized training sessions plus a report.
    pub fn fit(
        raw_sessions: &[Session],
        config: PreprocessConfig,
        seed: u64,
    ) -> (Self, Vec<Vec<u32>>, PreprocessReport) {
        let _fit_span = ucad_obs::span!("preprocess.fit");
        let mut report = PreprocessReport::default();
        let (policy, passing, rejected) = {
            let _s = ucad_obs::span!("preprocess.policy");
            let policy = AccessPolicy::learn_with_support(raw_sessions, config.policy_min_support);
            let (passing, rejected) = policy.filter(raw_sessions);
            (policy, passing, rejected)
        };
        report.policy_rejected = rejected.len();

        // The vocabulary is built from policy-passing sessions only, so
        // statements seen exclusively in filtered noise stay unknown (k0).
        let _tokenize_span = ucad_obs::span!("preprocess.tokenize");
        let passing_owned: Vec<Session> = passing.iter().map(|&s| s.clone()).collect();
        let vocab = Vocabulary::from_sessions(&passing_owned);
        report.vocab_size = vocab.len();

        let tokenized: Vec<Vec<u32>> = passing_owned
            .iter()
            .map(|s| vocab.tokenize_session(s))
            .collect();
        drop(_tokenize_span);
        let purified = if config.clean {
            let mut rng = StdRng::seed_from_u64(seed);
            let (outcome, stats) = clean_sessions(&tokenized, &config.cleaner, &mut rng);
            report.clean_stats = stats;
            tokenized
                .into_iter()
                .zip(outcome)
                .filter(|(_, o)| *o == CleanOutcome::Kept)
                .map(|(s, _)| s)
                .collect()
        } else {
            report.clean_stats.kept = tokenized.len();
            tokenized
        };

        // Session fates land on the global registry as
        // `ucad_preprocess_sessions_total{outcome=...}` — one increment per
        // input session, so the label sum equals the raw-log size.
        let obs = ucad_obs::global();
        let fate = |outcome: &str, n: usize| {
            obs.counter("ucad_preprocess_sessions_total", &[("outcome", outcome)])
                .add(n as u64);
        };
        fate("kept", purified.len());
        fate("policy_rejected", report.policy_rejected);
        fate("noise_cluster", report.clean_stats.noise);
        fate("small_cluster", report.clean_stats.small_cluster);
        fate("too_short", report.clean_stats.too_short);
        fate("undersampled", report.clean_stats.undersampled);
        obs.counter("ucad_preprocess_policy_rejected_total", &[])
            .add(report.policy_rejected as u64);
        ucad_obs::event(
            "preprocess.fit",
            &[
                ("raw_sessions", raw_sessions.len().to_string()),
                ("purified", purified.len().to_string()),
                ("vocab_size", report.vocab_size.to_string()),
            ],
        );

        (
            Preprocessor {
                vocab,
                policy,
                config,
            },
            purified,
            report,
        )
    }

    /// Tokenizes an active session for detection. Unknown statements map to
    /// `k0`.
    pub fn transform(&self, session: &Session) -> Vec<u32> {
        self.vocab.tokenize_session(session)
    }

    /// Detection-time policy screen: known attack patterns are filtered
    /// directly (§3, "directly filters out the known attack patterns").
    pub fn screen(&self, session: &Session) -> Option<PolicyViolation> {
        self.policy.check(session)
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PreprocessConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucad_trace::{generate_raw_log, ScenarioSpec};

    #[test]
    fn fit_removes_most_noise_and_keeps_most_normals() {
        let spec = ScenarioSpec::commenting();
        let raw = generate_raw_log(&spec, 60, 0.25, 42);
        let (_, purified, report) =
            Preprocessor::fit(&raw.sessions, PreprocessConfig::default(), 7);
        // 15 noise sessions were injected; the pipeline must remove a clear
        // majority of the input noise while keeping a solid training corpus.
        let removed = raw.sessions.len() - purified.len() - report.clean_stats.undersampled;
        assert!(
            removed >= raw.noise_indices.len() / 2,
            "removed only {} sessions for {} injected noise",
            removed,
            raw.noise_indices.len()
        );
        assert!(
            purified.len() >= 20,
            "too little training data survived: {}",
            purified.len()
        );
        assert!(
            report.vocab_size >= 15,
            "vocab too small: {}",
            report.vocab_size
        );
    }

    #[test]
    fn policy_stage_catches_unknown_address_noise() {
        let spec = ScenarioSpec::commenting();
        let raw = generate_raw_log(&spec, 50, 0.2, 43);
        let (pre, _, report) = Preprocessor::fit(&raw.sessions, PreprocessConfig::default(), 7);
        assert!(report.policy_rejected > 0, "expected policy rejections");
        // Every policy-violation noise session must be screened at
        // detection time too.
        for &i in &raw.noise_indices {
            let s = &raw.sessions[i];
            if s.client_ip.starts_with("198.51.100.") {
                assert!(pre.screen(s).is_some(), "unknown address passed screening");
            }
        }
    }

    #[test]
    fn transform_maps_unseen_statements_to_k0() {
        let spec = ScenarioSpec::commenting();
        // Seed picked so session 0 stays fully in-vocabulary after
        // preprocessing under the vendored RNG stream.
        let raw = generate_raw_log(&spec, 40, 0.0, 45);
        let (pre, _, _) = Preprocessor::fit(&raw.sessions, PreprocessConfig::default(), 7);
        let mut s = raw.sessions[0].clone();
        s.ops[0].sql = "SELECT * FROM never_seen_table WHERE zz=1".into();
        let keys = pre.transform(&s);
        assert_eq!(keys[0], UNKNOWN_KEY);
        assert!(keys[1..].iter().all(|&k| k != UNKNOWN_KEY));
    }

    #[test]
    fn clean_disabled_keeps_all_policy_passing_sessions() {
        let spec = ScenarioSpec::commenting();
        let raw = generate_raw_log(&spec, 30, 0.1, 45);
        let cfg = PreprocessConfig {
            clean: false,
            ..Default::default()
        };
        let (_, purified, report) = Preprocessor::fit(&raw.sessions, cfg, 7);
        assert_eq!(purified.len() + report.policy_rejected, raw.sessions.len());
    }
}
