//! Attribute-based access-control policies (§5.1, "enforcing access control
//! policies").
//!
//! Following the paper, policies are built over five attributes: user
//! identity, client address, access time, target table, and the interval
//! between consecutive operations. Granting policies are learned from the
//! observed training population; denying policies are explicit rules.
//! Sessions violating a granting policy or matching a denying policy are
//! filtered out before clustering.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use ucad_trace::Session;

/// Why a session was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyViolation {
    /// The `(user, address)` pair was never seen in the training population.
    UnknownAddress {
        /// User account.
        user: String,
        /// Offending address.
        ip: String,
    },
    /// The session started outside the allowed hour band.
    OffHours {
        /// Hour of day (0-23) the session started.
        hour: u8,
    },
    /// The user accessed a table outside their observed set.
    ForbiddenTable {
        /// User account.
        user: String,
        /// Offending table.
        table: String,
    },
    /// Two consecutive operations were separated by more than the allowed
    /// interval (session hijacking indicator).
    ExcessiveInterval {
        /// Observed gap in seconds.
        gap: u64,
    },
    /// An explicit deny rule matched.
    DenyRule {
        /// Name of the matching rule.
        rule: String,
    },
}

/// An explicit deny rule (the paper notes policies are extensible; new
/// rules slot in here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DenyRule {
    /// Deny a specific client address.
    Address {
        /// Rule name for reporting.
        name: String,
        /// Blocked address.
        ip: String,
    },
    /// Deny any access to a table.
    Table {
        /// Rule name for reporting.
        name: String,
        /// Blocked table.
        table: String,
    },
    /// Deny a specific user account.
    User {
        /// Rule name for reporting.
        name: String,
        /// Blocked account.
        user: String,
    },
}

/// Learned + explicit access-control policy set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessPolicy {
    /// Known `(user → addresses)` population.
    known_ips: HashMap<String, HashSet<String>>,
    /// Known `(user → tables)` population.
    known_tables: HashMap<String, HashSet<String>>,
    /// Allowed start-hour band `[start, end)`.
    hour_band: (u8, u8),
    /// Maximum allowed gap between consecutive ops (seconds).
    max_interval: u64,
    /// Explicit deny rules.
    deny_rules: Vec<DenyRule>,
}

impl AccessPolicy {
    /// Learns granting policies from raw (possibly noisy) logs, admitting an
    /// attribute value only when it has at least `min_support` supporting
    /// sessions. One-off addresses, tables and hours — the signature of
    /// policy-violating noise — then fail the granting policies.
    pub fn learn_with_support(sessions: &[Session], min_support: usize) -> Self {
        use std::collections::HashMap as Map;
        let mut ip_counts: Map<(String, String), usize> = Map::new();
        let mut table_counts: Map<(String, String), usize> = Map::new();
        let mut hour_counts: Map<u8, usize> = Map::new();
        let mut max_gap = 1u64;
        for s in sessions {
            *ip_counts
                .entry((s.user.clone(), s.client_ip.clone()))
                .or_insert(0) += 1;
            let mut seen_tables = HashSet::new();
            for op in &s.ops {
                seen_tables.insert(op.table.clone());
            }
            for t in seen_tables {
                *table_counts.entry((s.user.clone(), t)).or_insert(0) += 1;
            }
            if let Some(first) = s.ops.first() {
                *hour_counts
                    .entry(((first.timestamp % 86_400) / 3_600) as u8)
                    .or_insert(0) += 1;
            }
            for w in s.ops.windows(2) {
                max_gap = max_gap.max(w[1].timestamp - w[0].timestamp);
            }
        }
        let mut known_ips: HashMap<String, HashSet<String>> = HashMap::new();
        for ((user, ip), c) in ip_counts {
            if c >= min_support {
                known_ips.entry(user).or_default().insert(ip);
            }
        }
        let mut known_tables: HashMap<String, HashSet<String>> = HashMap::new();
        for ((user, table), c) in table_counts {
            if c >= min_support {
                known_tables.entry(user).or_default().insert(table);
            }
        }
        let supported: Vec<u8> = hour_counts
            .iter()
            .filter(|(_, &c)| c >= min_support)
            .map(|(&h, _)| h)
            .collect();
        let (min_hour, max_hour) = match (supported.iter().min(), supported.iter().max()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (0, 23),
        };
        AccessPolicy {
            known_ips,
            known_tables,
            hour_band: (min_hour.saturating_sub(1), (max_hour + 2).min(24)),
            max_interval: max_gap * 4,
            deny_rules: Vec::new(),
        }
    }

    /// Learns granting policies from a trusted training population:
    /// per-user address and table sets, the observed start-hour band
    /// (with ±1h slack), and the maximum observed inter-op interval
    /// (with 4x slack).
    pub fn learn(sessions: &[Session]) -> Self {
        let mut known_ips: HashMap<String, HashSet<String>> = HashMap::new();
        let mut known_tables: HashMap<String, HashSet<String>> = HashMap::new();
        let mut min_hour = 23u8;
        let mut max_hour = 0u8;
        let mut max_gap = 1u64;
        for s in sessions {
            known_ips
                .entry(s.user.clone())
                .or_default()
                .insert(s.client_ip.clone());
            let tables = known_tables.entry(s.user.clone()).or_default();
            for op in &s.ops {
                tables.insert(op.table.clone());
            }
            if let Some(first) = s.ops.first() {
                let hour = ((first.timestamp % 86_400) / 3_600) as u8;
                min_hour = min_hour.min(hour);
                max_hour = max_hour.max(hour);
            }
            for w in s.ops.windows(2) {
                max_gap = max_gap.max(w[1].timestamp - w[0].timestamp);
            }
        }
        AccessPolicy {
            known_ips,
            known_tables,
            hour_band: (min_hour.saturating_sub(1), (max_hour + 2).min(24)),
            max_interval: max_gap * 4,
            deny_rules: Vec::new(),
        }
    }

    /// Adds an explicit deny rule.
    pub fn add_deny_rule(&mut self, rule: DenyRule) {
        self.deny_rules.push(rule);
    }

    /// Checks a session; `None` means the session passes all policies.
    pub fn check(&self, session: &Session) -> Option<PolicyViolation> {
        for rule in &self.deny_rules {
            match rule {
                DenyRule::Address { name, ip } if *ip == session.client_ip => {
                    return Some(PolicyViolation::DenyRule { rule: name.clone() })
                }
                DenyRule::User { name, user } if *user == session.user => {
                    return Some(PolicyViolation::DenyRule { rule: name.clone() })
                }
                DenyRule::Table { name, table }
                    if session.ops.iter().any(|op| op.table == *table) =>
                {
                    return Some(PolicyViolation::DenyRule { rule: name.clone() })
                }
                _ => {}
            }
        }
        match self.known_ips.get(&session.user) {
            Some(ips) if ips.contains(&session.client_ip) => {}
            _ => {
                return Some(PolicyViolation::UnknownAddress {
                    user: session.user.clone(),
                    ip: session.client_ip.clone(),
                })
            }
        }
        if let Some(first) = session.ops.first() {
            let hour = ((first.timestamp % 86_400) / 3_600) as u8;
            if hour < self.hour_band.0 || hour >= self.hour_band.1 {
                return Some(PolicyViolation::OffHours { hour });
            }
        }
        if let Some(tables) = self.known_tables.get(&session.user) {
            for op in &session.ops {
                if !tables.contains(&op.table) {
                    return Some(PolicyViolation::ForbiddenTable {
                        user: session.user.clone(),
                        table: op.table.clone(),
                    });
                }
            }
        }
        for w in session.ops.windows(2) {
            let gap = w[1].timestamp - w[0].timestamp;
            if gap > self.max_interval {
                return Some(PolicyViolation::ExcessiveInterval { gap });
            }
        }
        None
    }

    /// Splits sessions into `(passing, rejected)`.
    pub fn filter<'a>(
        &self,
        sessions: &'a [Session],
    ) -> (Vec<&'a Session>, Vec<(&'a Session, PolicyViolation)>) {
        let mut pass = Vec::new();
        let mut fail = Vec::new();
        for s in sessions {
            match self.check(s) {
                None => pass.push(s),
                Some(v) => fail.push((s, v)),
            }
        }
        (pass, fail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucad_dbsim::OpKind;
    use ucad_trace::Operation;

    fn session(user: &str, ip: &str, start: u64, tables: &[&str]) -> Session {
        Session {
            id: 1,
            user: user.into(),
            client_ip: ip.into(),
            ops: tables
                .iter()
                .enumerate()
                .map(|(i, t)| Operation {
                    sql: format!("SELECT * FROM {t}"),
                    table: t.to_string(),
                    kind: OpKind::Select,
                    timestamp: start + i as u64 * 5,
                })
                .collect(),
        }
    }

    fn trained() -> AccessPolicy {
        let train = vec![
            session("u1", "10.0.0.1", 9 * 3600, &["a", "b"]),
            session("u1", "10.0.0.1", 17 * 3600, &["a"]),
            session("u2", "10.0.0.2", 12 * 3600, &["b"]),
        ];
        AccessPolicy::learn(&train)
    }

    #[test]
    fn known_sessions_pass() {
        let p = trained();
        assert_eq!(p.check(&session("u1", "10.0.0.1", 10 * 3600, &["a"])), None);
    }

    #[test]
    fn unknown_address_is_rejected() {
        let p = trained();
        let v = p.check(&session("u1", "203.0.113.99", 10 * 3600, &["a"]));
        assert!(matches!(v, Some(PolicyViolation::UnknownAddress { .. })));
    }

    #[test]
    fn cross_user_address_is_rejected() {
        // u2's address used with u1's account: credential-sharing indicator.
        let p = trained();
        let v = p.check(&session("u1", "10.0.0.2", 10 * 3600, &["a"]));
        assert!(matches!(v, Some(PolicyViolation::UnknownAddress { .. })));
    }

    #[test]
    fn off_hours_is_rejected() {
        let p = trained();
        let v = p.check(&session("u1", "10.0.0.1", 3 * 3600, &["a"]));
        assert!(matches!(v, Some(PolicyViolation::OffHours { hour: 3 })));
    }

    #[test]
    fn forbidden_table_is_rejected() {
        let p = trained();
        let v = p.check(&session("u2", "10.0.0.2", 12 * 3600, &["a"]));
        assert!(matches!(v, Some(PolicyViolation::ForbiddenTable { .. })));
    }

    #[test]
    fn excessive_interval_is_rejected() {
        let p = trained();
        let mut s = session("u1", "10.0.0.1", 10 * 3600, &["a", "a"]);
        s.ops[1].timestamp = s.ops[0].timestamp + 100_000;
        let v = p.check(&s);
        assert!(matches!(v, Some(PolicyViolation::ExcessiveInterval { .. })));
    }

    #[test]
    fn deny_rules_take_priority() {
        let mut p = trained();
        p.add_deny_rule(DenyRule::Table {
            name: "no-secrets".into(),
            table: "a".into(),
        });
        let v = p.check(&session("u1", "10.0.0.1", 10 * 3600, &["a"]));
        assert_eq!(
            v,
            Some(PolicyViolation::DenyRule {
                rule: "no-secrets".into()
            })
        );
    }

    #[test]
    fn filter_partitions_sessions() {
        let p = trained();
        let sessions = vec![
            session("u1", "10.0.0.1", 10 * 3600, &["a"]),
            session("u1", "203.0.113.99", 10 * 3600, &["a"]),
        ];
        let (pass, fail) = p.filter(&sessions);
        assert_eq!(pass.len(), 1);
        assert_eq!(fail.len(), 1);
    }
}
