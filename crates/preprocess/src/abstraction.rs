//! Statement abstraction: literals → `$k` placeholders (§5.1).
//!
//! The paper's tokenization assigns one key per *abstract* statement so that
//! fine-grained differences (different columns, different `IN` arity,
//! different tuple counts) stay distinguishable while concrete literal values
//! (which would explode the vocabulary and leak user data) are folded away.

use ucad_dbsim::{parse, Condition, Statement, Value};

/// Abstracts one SQL statement: every literal becomes `$k`, numbered in
/// order of appearance. Statements that do not parse in the supported subset
/// fall back to [`abstract_literals`], so the tokenizer never drops input.
pub fn abstract_statement(sql: &str) -> String {
    match parse(sql) {
        Ok(stmt) => abstract_parsed(&stmt),
        Err(_) => abstract_literals(sql),
    }
}

/// Abstracts a parsed statement.
pub fn abstract_parsed(stmt: &Statement) -> String {
    let mut counter = 0usize;
    let mut ph = || {
        counter += 1;
        Value::Str(format!("${counter}"))
    };
    let conds = |conds: &[Condition], ph: &mut dyn FnMut() -> Value| -> Vec<Condition> {
        conds
            .iter()
            .map(|c| match c {
                Condition::Eq(col, _) => Condition::Eq(col.clone(), ph()),
                Condition::In(col, vs) => {
                    Condition::In(col.clone(), vs.iter().map(|_| ph()).collect())
                }
            })
            .collect()
    };
    let abstracted = match stmt {
        Statement::Insert {
            table,
            columns,
            rows,
        } => Statement::Insert {
            table: table.clone(),
            columns: columns.clone(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|_| ph()).collect())
                .collect(),
        },
        Statement::Select {
            table,
            projection,
            conditions,
        } => Statement::Select {
            table: table.clone(),
            projection: projection.clone(),
            conditions: conds(conditions, &mut ph),
        },
        Statement::Update {
            table,
            assignments,
            conditions,
        } => Statement::Update {
            table: table.clone(),
            assignments: assignments.iter().map(|(c, _)| (c.clone(), ph())).collect(),
            conditions: conds(conditions, &mut ph),
        },
        Statement::Delete { table, conditions } => Statement::Delete {
            table: table.clone(),
            conditions: conds(conditions, &mut ph),
        },
    };
    // Strip the quotes Display adds around string values: placeholders print
    // as `'$1'`; normalize to `$1`.
    abstracted.to_string().replace('\'', "")
}

/// Literal-level fallback abstraction: numbers and quoted strings become
/// `$k`. Used for statements outside the parsed subset and for free-form
/// log lines.
pub fn abstract_literals(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut counter = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\'' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] as char != '\'' {
                j += 1;
            }
            counter += 1;
            out.push_str(&format!("${counter}"));
            i = (j + 1).min(bytes.len());
        } else if c.is_ascii_digit()
            && (i == 0
                || !(bytes[i - 1] as char).is_ascii_alphanumeric() && bytes[i - 1] as char != '_')
        {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
            counter += 1;
            out.push_str(&format!("${counter}"));
            i = j;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstracts_the_paper_example() {
        // "Update T_content set count=23 where danmuKey=94" →
        // "UPDATE T_content SET count=$1 WHERE danmuKey=$2"
        let a = abstract_statement("Update T_content set count=23 where danmuKey=94");
        assert_eq!(a, "UPDATE T_content SET count=$1 WHERE danmuKey=$2");
    }

    #[test]
    fn identical_shapes_get_identical_abstractions() {
        let a = abstract_statement("SELECT * FROM t WHERE a=1 and b IN (2, 3)");
        let b = abstract_statement("SELECT * FROM t WHERE a=99 and b IN (7, 1000)");
        assert_eq!(a, b);
    }

    #[test]
    fn different_in_arity_stays_distinguishable() {
        let a = abstract_statement("SELECT * FROM t WHERE b IN (1, 2)");
        let b = abstract_statement("SELECT * FROM t WHERE b IN (1, 2, 3)");
        assert_ne!(a, b);
    }

    #[test]
    fn different_columns_stay_distinguishable() {
        // The paper's motivating example: normal_mac vs abnormal_mac must
        // get different keys even though the statements are literally close.
        let a = abstract_statement("DELETE FROM t_mac WHERE normal_mac=1");
        let b = abstract_statement("DELETE FROM t_mac WHERE abnormal_mac=1");
        assert_ne!(a, b);
    }

    #[test]
    fn different_tuple_counts_stay_distinguishable() {
        let a = abstract_statement("INSERT INTO t (a, b) VALUES (1, 2)");
        let b = abstract_statement("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)");
        assert_ne!(a, b);
    }

    #[test]
    fn placeholders_are_sequential() {
        let a = abstract_statement("INSERT INTO t (a, b, c) VALUES (1, 'x', 3)");
        assert_eq!(a, "INSERT INTO t (a, b, c) VALUES ($1, $2, $3)");
    }

    #[test]
    fn string_literals_are_abstracted() {
        let a = abstract_statement("UPDATE t SET name='alice' WHERE id=7");
        let b = abstract_statement("UPDATE t SET name='bob' WHERE id=8");
        assert_eq!(a, b);
        assert!(!a.contains("alice"));
    }

    #[test]
    fn fallback_handles_unparseable_text() {
        let a = abstract_literals("DROP TABLE users; -- 42 'oops'");
        assert!(a.contains("$1"));
        assert!(!a.contains("42"));
        assert!(!a.contains("oops"));
    }

    #[test]
    fn fallback_keeps_identifier_digits() {
        // Table names like t_cell_fp_3 must keep their digits: they are part
        // of the identifier, not literals.
        let a = abstract_literals("SELECT broken FROM t_cell_fp_3 WHERE ???=5");
        assert!(
            a.contains("t_cell_fp_3"),
            "identifier digits must survive: {a}"
        );
        assert!(!a.contains("=5"));
    }

    #[test]
    fn abstraction_is_idempotent() {
        let once = abstract_statement("SELECT * FROM t WHERE a=1");
        let twice = abstract_statement(&once);
        assert_eq!(once, twice);
    }
}
