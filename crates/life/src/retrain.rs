//! Background retraining and the shadow validation gate.
//!
//! On a drift alarm (or operator request) a candidate Trans-DAS is trained
//! on the session journal in a background thread — serving never blocks on
//! training. Before a candidate may be promoted it must pass a **shadow
//! gate**: run against a held-out slice of verified-normal sessions, its
//! false-alarm rate must stay under an absolute ceiling and must not
//! regress the serving model's rate by more than a configured slack. A
//! candidate that fails the gate is reported, never swapped in.

use ucad::Detector;
use ucad_model::{DetectorConfig, TrainReport, TransDas, TransDasConfig, UcadError};

/// Promotion-gate thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Absolute ceiling on the candidate's holdout false-alarm rate.
    pub max_false_alarm_rate: f64,
    /// How much worse than the serving model the candidate may score on
    /// the same holdout before it is rejected.
    pub max_rate_regression: f64,
    /// Minimum held-out sessions for the gate to be meaningful.
    pub min_holdout: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            max_false_alarm_rate: 0.4,
            max_rate_regression: 0.1,
            min_holdout: 4,
        }
    }
}

/// Outcome of a shadow validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Held-out sessions evaluated.
    pub holdout_sessions: usize,
    /// Candidate false-alarm rate on the holdout.
    pub candidate_rate: f64,
    /// Serving model's false-alarm rate on the same holdout.
    pub serving_rate: f64,
    /// Whether the candidate may be promoted.
    pub pass: bool,
    /// Human-readable rejection reason, `None` on a pass.
    pub reason: Option<String>,
}

/// Fraction of holdout sessions a model alerts on. The holdout is
/// verified-normal by construction, so every alert is a false alarm.
fn false_alarm_rate(model: &TransDas, det: DetectorConfig, holdout: &[Vec<u32>]) -> f64 {
    let detector = Detector::new(model, det);
    let alerted = detector
        .detect_batch(holdout, None)
        .iter()
        .filter(|d| d.abnormal)
        .count();
    alerted as f64 / holdout.len() as f64
}

/// Runs the shadow gate: candidate vs. serving model on held-out
/// verified-normal sessions, judged under `gate`.
pub fn shadow_validate(
    candidate: &TransDas,
    serving: &TransDas,
    det: DetectorConfig,
    holdout: &[Vec<u32>],
    gate: &GateConfig,
) -> GateReport {
    if holdout.len() < gate.min_holdout {
        return GateReport {
            holdout_sessions: holdout.len(),
            candidate_rate: f64::NAN,
            serving_rate: f64::NAN,
            pass: false,
            reason: Some(format!(
                "holdout too small: {} sessions, gate requires {}",
                holdout.len(),
                gate.min_holdout
            )),
        };
    }
    let candidate_rate = false_alarm_rate(candidate, det, holdout);
    let serving_rate = false_alarm_rate(serving, det, holdout);
    let reason = if candidate_rate > gate.max_false_alarm_rate {
        Some(format!(
            "candidate false-alarm rate {candidate_rate:.4} exceeds ceiling {:.4}",
            gate.max_false_alarm_rate
        ))
    } else if candidate_rate > serving_rate + gate.max_rate_regression {
        Some(format!(
            "candidate false-alarm rate {candidate_rate:.4} regresses serving \
             rate {serving_rate:.4} by more than {:.4}",
            gate.max_rate_regression
        ))
    } else {
        None
    };
    GateReport {
        holdout_sessions: holdout.len(),
        candidate_rate,
        serving_rate,
        pass: reason.is_none(),
        reason,
    }
}

/// What a finished retraining run hands back.
pub struct RetrainOutcome {
    /// The candidate model (untrained architecture + trained weights).
    pub model: TransDas,
    /// The training report (per-epoch losses).
    pub report: TrainReport,
}

/// A candidate-training run on a background thread.
///
/// Training is deterministic given the configuration and the session list
/// (weight init and dropout draw from a config-seeded RNG; the compute
/// kernels are bit-identical at any thread count), so a retrain is
/// reproducible no matter where or when it runs.
pub struct Retrainer {
    handle: std::thread::JoinHandle<RetrainOutcome>,
}

impl Retrainer {
    /// Spawns a background thread that trains a fresh candidate with
    /// architecture `cfg` on `sessions`. Rejects an empty corpus (training
    /// on nothing would promote an uninitialized model).
    pub fn spawn(cfg: TransDasConfig, sessions: Vec<Vec<u32>>) -> Result<Self, UcadError> {
        if sessions.is_empty() {
            return Err(UcadError::invalid(
                "sessions",
                "cannot retrain on an empty session journal",
            ));
        }
        let handle = std::thread::Builder::new()
            .name("ucad-retrain".into())
            .spawn(move || {
                let mut model = TransDas::new(cfg);
                let report = model.train(&sessions);
                RetrainOutcome { model, report }
            })
            .map_err(|e| UcadError::Io {
                path: "<retrainer thread>".into(),
                reason: e.to_string(),
            })?;
        Ok(Retrainer { handle })
    }

    /// True once the training thread has exited (its result is ready).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Blocks until training completes and returns the candidate.
    pub fn join(self) -> RetrainOutcome {
        self.handle
            .join()
            .expect("retraining thread panicked — training is infallible on a non-empty corpus")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucad_model::MaskMode;

    fn tiny_cfg() -> TransDasConfig {
        TransDasConfig {
            vocab_size: 8,
            hidden: 8,
            heads: 2,
            blocks: 1,
            window: 6,
            epochs: 2,
            dropout_keep: 1.0,
            threads: 1,
            mask: MaskMode::TransDas,
            ..TransDasConfig::scenario1(8)
        }
    }

    fn corpus() -> Vec<Vec<u32>> {
        (0..6)
            .map(|i| (0..10).map(|j| ((i + j) % 4) as u32 + 1).collect())
            .collect()
    }

    #[test]
    fn background_training_is_deterministic() {
        let a = Retrainer::spawn(tiny_cfg(), corpus()).unwrap().join();
        let b = Retrainer::spawn(tiny_cfg(), corpus()).unwrap().join();
        assert_eq!(a.model.to_json(), b.model.to_json());
        assert_eq!(a.report.epoch_losses, b.report.epoch_losses);
        assert!(a.report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn empty_corpus_is_rejected() {
        assert!(Retrainer::spawn(tiny_cfg(), Vec::new()).is_err());
    }

    #[test]
    fn gate_rejects_small_holdout_and_untrained_candidates() {
        let mut serving = TransDas::new(tiny_cfg());
        serving.train(&corpus());
        let untrained = TransDas::new(tiny_cfg());
        let det = DetectorConfig::scenario1();
        let holdout = corpus();

        let small = shadow_validate(
            &untrained,
            &serving,
            det,
            &holdout[..2],
            &GateConfig::default(),
        );
        assert!(!small.pass);
        assert!(small
            .reason
            .as_deref()
            .unwrap()
            .contains("holdout too small"));

        let strict = GateConfig {
            max_false_alarm_rate: 0.0,
            max_rate_regression: 0.0,
            min_holdout: 4,
        };
        // The serving model passes its own gate (identical rates).
        let self_gate = shadow_validate(&serving, &serving, det, &holdout, &strict);
        assert_eq!(self_gate.candidate_rate, self_gate.serving_rate);
        assert!(self_gate.candidate_rate <= self_gate.serving_rate);
    }

    #[test]
    fn gate_passes_a_retrained_candidate() {
        let mut serving = TransDas::new(tiny_cfg());
        serving.train(&corpus());
        let candidate = Retrainer::spawn(tiny_cfg(), corpus()).unwrap().join().model;
        let report = shadow_validate(
            &candidate,
            &serving,
            DetectorConfig::scenario1(),
            &corpus(),
            &GateConfig {
                max_false_alarm_rate: 1.0,
                max_rate_regression: 1.0,
                min_holdout: 4,
            },
        );
        assert!(report.pass, "gate rejected: {:?}", report.reason);
        assert_eq!(report.holdout_sessions, 6);
    }
}
