//! Rolling journal of verified-normal sessions — the retraining corpus.
//!
//! The serving engine's feedback channel (`drain_feedback` plus DBA
//! false-alarm confirmations) yields tokenized sessions the system believes
//! are normal; §5.2 retrains on exactly this stream. The journal keeps the
//! most recent `capacity` of them in arrival order and hands out
//! deterministic train/holdout splits for the promotion gate.

use std::collections::VecDeque;

/// Bounded FIFO of tokenized (key-sequence) sessions.
#[derive(Debug, Clone)]
pub struct SessionJournal {
    capacity: usize,
    sessions: VecDeque<Vec<u32>>,
}

impl SessionJournal {
    /// Creates a journal keeping at most `capacity` sessions.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "journal capacity must be at least 1");
        SessionJournal {
            capacity,
            sessions: VecDeque::new(),
        }
    }

    /// Appends sessions, evicting the oldest beyond capacity.
    pub fn extend(&mut self, sessions: impl IntoIterator<Item = Vec<u32>>) {
        for s in sessions {
            if self.sessions.len() == self.capacity {
                self.sessions.pop_front();
            }
            self.sessions.push_back(s);
        }
    }

    /// Sessions currently resident.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are journaled.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The resident sessions in arrival order.
    pub fn snapshot(&self) -> Vec<Vec<u32>> {
        self.sessions.iter().cloned().collect()
    }

    /// Splits the journal into a training slice and a held-out validation
    /// slice for the shadow gate: every `holdout_every`-th session (in a
    /// canonical sorted order) is held out, the rest train.
    ///
    /// The split sorts lexicographically before slicing, so it is invariant
    /// to how feedback interleaved across serving shards — the same journal
    /// *contents* always produce the same candidate model and the same gate
    /// verdict, regardless of shard count.
    pub fn split_holdout(&self, holdout_every: usize) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        assert!(holdout_every >= 2, "holdout_every must be at least 2");
        let mut all = self.snapshot();
        all.sort_unstable();
        let mut train = Vec::new();
        let mut holdout = Vec::new();
        for (i, s) in all.into_iter().enumerate() {
            if (i + 1) % holdout_every == 0 {
                holdout.push(s);
            } else {
                train.push(s);
            }
        }
        (train, holdout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut j = SessionJournal::new(3);
        j.extend((0..5u32).map(|i| vec![i]));
        assert_eq!(j.len(), 3);
        assert_eq!(j.snapshot(), vec![vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn split_is_invariant_to_arrival_order() {
        let mut a = SessionJournal::new(8);
        a.extend([vec![3u32], vec![1], vec![4], vec![2]]);
        let mut b = SessionJournal::new(8);
        b.extend([vec![2u32], vec![4], vec![1], vec![3]]);
        assert_eq!(a.split_holdout(3), b.split_holdout(3));
        let (train, holdout) = a.split_holdout(3);
        assert_eq!(train.len() + holdout.len(), 4);
        assert_eq!(holdout, vec![vec![3]]);
    }

    #[test]
    fn empty_journal_splits_empty() {
        let j = SessionJournal::new(4);
        assert!(j.is_empty());
        let (train, holdout) = j.split_holdout(2);
        assert!(train.is_empty() && holdout.is_empty());
    }
}
