//! Workload-drift detection over the serving engine's detection stream.
//!
//! The paper (§2, §6.3) assumes access patterns evolve with the application
//! and prescribes periodic retraining on fresh audit logs. [`DriftMonitor`]
//! turns that prescription into a signal: it subscribes to the serving
//! engine as a [`ServeObserver`] and compares three sliding-window
//! statistics against a training-time [`DriftBaseline`]:
//!
//! * **alert-rate EWMA** — an exponentially weighted average of the
//!   per-session alert indicator, compared against the baseline session
//!   alert rate (a drifted workload alerts far more often);
//! * **unseen-key ratio** — the fraction of records whose statement
//!   tokenizes to `k0` (never seen in training: the vocabulary is frozen,
//!   so genuinely new statements can only drift upward);
//! * **PSI** — the Population Stability Index between the window's top-*p*
//!   rank histogram and the baseline rank distribution, the standard
//!   score-shift statistic for deployed models.
//!
//! Record statistics are evaluated once per `window` records; any breach
//! raises a drift alarm (counted, gauged, and emitted as a `life.drift_alarm`
//! event through [`ucad_obs`]).
//!
//! Determinism: every statistic is a pure fold over the observer call
//! sequence, so a single-shard engine produces a bit-reproducible
//! [`DriftSnapshot`] for a given record stream. With multiple shards the
//! call interleaving follows worker timing — pin drift golden tests to one
//! shard.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use ucad::{Alert, Detector, ServeObserver, Ucad};
use ucad_model::UcadError;
use ucad_obs::{Counter, Gauge, MetricKind, Registry};

/// Thresholds and window geometry of a [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Records per evaluation window.
    pub window: u64,
    /// EWMA smoothing factor for the per-session alert indicator, in
    /// `(0, 1]` (higher = faster reaction).
    pub ewma_alpha: f64,
    /// Alarm when the alert-rate EWMA exceeds
    /// `baseline.alert_rate * ewma_factor + ewma_margin`.
    pub ewma_factor: f64,
    /// Additive slack on the alert-rate threshold, absorbing baselines
    /// near zero.
    pub ewma_margin: f64,
    /// Alarm when a window's unseen-key ratio exceeds this.
    pub unseen_threshold: f64,
    /// Alarm when a window's PSI against the baseline rank distribution
    /// exceeds this (0.25 is the conventional "significant shift" bound).
    pub psi_threshold: f64,
    /// Number of rank buckets: ranks `0..buckets-2` individually, one
    /// overflow bucket, one bucket for unranked (unknown-statement)
    /// positions. At least 2.
    pub rank_buckets: usize,
    /// Sessions that must close before the alert-rate statistic may alarm
    /// (the EWMA is meaningless over a handful of sessions).
    pub min_sessions: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 256,
            ewma_alpha: 0.2,
            ewma_factor: 3.0,
            ewma_margin: 0.05,
            unseen_threshold: 0.10,
            psi_threshold: 0.25,
            rank_buckets: 8,
            min_sessions: 5,
        }
    }
}

/// Probability floor for PSI, so empty buckets do not blow the logarithm up.
const PSI_EPSILON: f64 = 1e-4;

/// Training-time reference the live statistics are compared against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftBaseline {
    /// Fraction of training-corpus sessions the detector alerts on (its
    /// training false-alarm rate).
    pub alert_rate: f64,
    /// Distribution over rank buckets of every scored position, summing
    /// to 1.
    pub rank_dist: Vec<f64>,
}

/// Bucket index of a scored position's rank. Ranks `0..b-2` map to their
/// own bucket, larger ranks to the overflow bucket `b-2`, unranked
/// (unknown-statement) positions to the final bucket `b-1`.
fn bucket_of(rank: Option<usize>, buckets: usize) -> usize {
    match rank {
        Some(r) => r.min(buckets - 2),
        None => buckets - 1,
    }
}

/// Counts-to-probabilities with epsilon flooring (PSI convention).
fn floored_dist(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    counts
        .iter()
        .map(|&c| {
            if total == 0 {
                PSI_EPSILON
            } else {
                (c as f64 / total as f64).max(PSI_EPSILON)
            }
        })
        .collect()
}

/// Population Stability Index between a live and a baseline distribution.
fn psi(live: &[f64], base: &[f64]) -> f64 {
    live.iter()
        .zip(base)
        .map(|(&p, &q)| {
            let q = q.max(PSI_EPSILON);
            (p - q) * (p / q).ln()
        })
        .sum()
}

impl DriftBaseline {
    /// Computes the baseline by replaying the detector over tokenized
    /// sessions — typically the purified training corpus — with the same
    /// stop-on-first-abnormal walk the serving engine uses, so the baseline
    /// measures exactly what the live statistics will.
    pub fn from_keyed_sessions(
        system: &Ucad,
        sessions: &[Vec<u32>],
        rank_buckets: usize,
    ) -> Result<Self, UcadError> {
        if rank_buckets < 2 {
            return Err(UcadError::invalid(
                "rank_buckets",
                "need at least an overflow and an unranked bucket",
            ));
        }
        if sessions.is_empty() {
            return Err(UcadError::invalid(
                "sessions",
                "cannot derive a drift baseline from zero sessions",
            ));
        }
        let detector = Detector::new(&system.model, system.detector);
        let mut counts = vec![0u64; rank_buckets];
        let mut alerted = 0u64;
        for keys in sessions {
            let verdicts = detector.run_verdicts_detail(keys, 0, None);
            if verdicts.last().is_some_and(|v| v.verdict.is_abnormal()) {
                alerted += 1;
            }
            for v in &verdicts {
                counts[bucket_of(v.rank, rank_buckets)] += 1;
            }
        }
        Ok(DriftBaseline {
            alert_rate: alerted as f64 / sessions.len() as f64,
            rank_dist: floored_dist(&counts),
        })
    }
}

/// Serializable state snapshot, the payload drift golden tests pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftSnapshot {
    /// Records observed.
    pub records: u64,
    /// Records that tokenized to the unknown statement `k0`.
    pub unseen: u64,
    /// Positions scored.
    pub scored: u64,
    /// Sessions closed.
    pub sessions: u64,
    /// Closed sessions that had alerted.
    pub alerted_sessions: u64,
    /// Drift alarms raised.
    pub alarms: u64,
    /// Current alert-rate EWMA.
    pub alert_rate_ewma: f64,
    /// Unseen-key ratio of the last completed window.
    pub last_unseen_ratio: f64,
    /// PSI of the last completed window.
    pub last_psi: f64,
}

struct State {
    records: u64,
    unseen: u64,
    scored: u64,
    sessions: u64,
    alerted_sessions: u64,
    alarms: u64,
    ewma: f64,
    window_records: u64,
    window_unseen: u64,
    window_ranks: Vec<u64>,
    last_unseen_ratio: f64,
    last_psi: f64,
}

/// Sliding-window drift detector; implements [`ServeObserver`] so it plugs
/// straight into [`ucad::ShardedOnlineUcad::try_new_observed`].
pub struct DriftMonitor {
    cfg: DriftConfig,
    baseline: DriftBaseline,
    state: Mutex<State>,
    records: Counter,
    unseen: Counter,
    alarms: Counter,
    ewma_gauge: Gauge,
    unseen_gauge: Gauge,
    psi_gauge: Gauge,
}

impl DriftMonitor {
    /// Builds a monitor around a baseline; rejects degenerate
    /// configurations with [`UcadError::InvalidConfig`].
    pub fn new(cfg: DriftConfig, baseline: DriftBaseline) -> Result<Self, UcadError> {
        if cfg.window == 0 {
            return Err(UcadError::invalid(
                "window",
                "need at least one record per window",
            ));
        }
        if cfg.rank_buckets < 2 {
            return Err(UcadError::invalid(
                "rank_buckets",
                "need at least an overflow and an unranked bucket",
            ));
        }
        if !(cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0) {
            return Err(UcadError::invalid("ewma_alpha", "must lie in (0, 1]"));
        }
        if baseline.rank_dist.len() != cfg.rank_buckets {
            return Err(UcadError::invalid(
                "rank_buckets",
                format!(
                    "baseline has {} buckets, config wants {}",
                    baseline.rank_dist.len(),
                    cfg.rank_buckets
                ),
            ));
        }
        let ewma_gauge = Gauge::new();
        ewma_gauge.set(baseline.alert_rate);
        Ok(DriftMonitor {
            state: Mutex::new(State {
                records: 0,
                unseen: 0,
                scored: 0,
                sessions: 0,
                alerted_sessions: 0,
                alarms: 0,
                ewma: baseline.alert_rate,
                window_records: 0,
                window_unseen: 0,
                window_ranks: vec![0; cfg.rank_buckets],
                last_unseen_ratio: 0.0,
                last_psi: 0.0,
            }),
            cfg,
            baseline,
            records: Counter::new(),
            unseen: Counter::new(),
            alarms: Counter::new(),
            ewma_gauge,
            unseen_gauge: Gauge::new(),
            psi_gauge: Gauge::new(),
        })
    }

    /// Exposes the monitor's cells on a metrics registry under
    /// `ucad_life_*`, tagged with the given labels. The registry adopts the
    /// monitor's own cells, so [`DriftMonitor::snapshot`] and the
    /// exposition always agree.
    pub fn register_metrics(&self, registry: &Registry, labels: &[(&str, &str)]) {
        registry.describe(
            "ucad_life_records_total",
            MetricKind::Counter,
            "Records observed by the drift monitor",
        );
        registry.describe(
            "ucad_life_unseen_total",
            MetricKind::Counter,
            "Records whose statement was never seen in training (k0)",
        );
        registry.describe(
            "ucad_life_drift_alarms_total",
            MetricKind::Counter,
            "Drift alarms raised",
        );
        registry.describe(
            "ucad_life_alert_rate_ewma",
            MetricKind::Gauge,
            "EWMA of the per-session alert indicator",
        );
        registry.describe(
            "ucad_life_unseen_ratio",
            MetricKind::Gauge,
            "Unseen-key ratio of the last completed drift window",
        );
        registry.describe(
            "ucad_life_psi",
            MetricKind::Gauge,
            "Population Stability Index of the last completed drift window",
        );
        registry.register_counter("ucad_life_records_total", labels, &self.records);
        registry.register_counter("ucad_life_unseen_total", labels, &self.unseen);
        registry.register_counter("ucad_life_drift_alarms_total", labels, &self.alarms);
        registry.register_gauge("ucad_life_alert_rate_ewma", labels, &self.ewma_gauge);
        registry.register_gauge("ucad_life_unseen_ratio", labels, &self.unseen_gauge);
        registry.register_gauge("ucad_life_psi", labels, &self.psi_gauge);
    }

    /// Number of drift alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.state.lock().expect("drift state poisoned").alarms
    }

    /// True once any drift alarm has fired.
    pub fn drifted(&self) -> bool {
        self.alarms() > 0
    }

    /// The baseline the live statistics are compared against.
    pub fn baseline(&self) -> &DriftBaseline {
        &self.baseline
    }

    /// Snapshot of every statistic (the golden-test payload).
    pub fn snapshot(&self) -> DriftSnapshot {
        let st = self.state.lock().expect("drift state poisoned");
        DriftSnapshot {
            records: st.records,
            unseen: st.unseen,
            scored: st.scored,
            sessions: st.sessions,
            alerted_sessions: st.alerted_sessions,
            alarms: st.alarms,
            alert_rate_ewma: st.ewma,
            last_unseen_ratio: st.last_unseen_ratio,
            last_psi: st.last_psi,
        }
    }

    /// Window-boundary evaluation: computes the window statistics, updates
    /// the gauges, raises an alarm on any threshold breach, and resets the
    /// window accumulators.
    fn evaluate(&self, st: &mut State) {
        let unseen_ratio = st.window_unseen as f64 / st.window_records as f64;
        let window_psi = psi(&floored_dist(&st.window_ranks), &self.baseline.rank_dist);
        st.last_unseen_ratio = unseen_ratio;
        st.last_psi = window_psi;
        self.unseen_gauge.set(unseen_ratio);
        self.psi_gauge.set(window_psi);

        let rate_bound = self.baseline.alert_rate * self.cfg.ewma_factor + self.cfg.ewma_margin;
        let rate_breach = st.sessions >= self.cfg.min_sessions && st.ewma > rate_bound;
        let unseen_breach = unseen_ratio > self.cfg.unseen_threshold;
        let psi_breach = window_psi > self.cfg.psi_threshold;
        if rate_breach || unseen_breach || psi_breach {
            st.alarms += 1;
            self.alarms.inc();
            ucad_obs::event(
                "life.drift_alarm",
                &[
                    ("alert_rate_ewma", format!("{:.6}", st.ewma)),
                    ("unseen_ratio", format!("{unseen_ratio:.6}")),
                    ("psi", format!("{window_psi:.6}")),
                    ("rate_breach", rate_breach.to_string()),
                    ("unseen_breach", unseen_breach.to_string()),
                    ("psi_breach", psi_breach.to_string()),
                ],
            );
        }
        st.window_records = 0;
        st.window_unseen = 0;
        st.window_ranks.iter_mut().for_each(|c| *c = 0);
    }
}

impl ServeObserver for DriftMonitor {
    fn on_record(&self, key: u32) {
        let mut st = self.state.lock().expect("drift state poisoned");
        st.records += 1;
        st.window_records += 1;
        self.records.inc();
        if key == 0 {
            st.unseen += 1;
            st.window_unseen += 1;
            self.unseen.inc();
        }
        if st.window_records >= self.cfg.window {
            self.evaluate(&mut st);
        }
    }

    fn on_score(&self, rank: Option<usize>, _abnormal: bool) {
        let mut st = self.state.lock().expect("drift state poisoned");
        st.scored += 1;
        let b = bucket_of(rank, self.cfg.rank_buckets);
        st.window_ranks[b] += 1;
    }

    fn on_alert(&self, _alert: &Alert) {}

    fn on_session_close(&self, alerted: bool) {
        let mut st = self.state.lock().expect("drift state poisoned");
        st.sessions += 1;
        if alerted {
            st.alerted_sessions += 1;
        }
        let x = if alerted { 1.0 } else { 0.0 };
        st.ewma = self.cfg.ewma_alpha * x + (1.0 - self.cfg.ewma_alpha) * st.ewma;
        self.ewma_gauge.set(st.ewma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_baseline(buckets: usize, alert_rate: f64) -> DriftBaseline {
        DriftBaseline {
            alert_rate,
            rank_dist: vec![1.0 / buckets as f64; buckets],
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_monitors() {
        let b = flat_baseline(8, 0.1);
        let bad_window = DriftConfig {
            window: 0,
            ..DriftConfig::default()
        };
        assert!(DriftMonitor::new(bad_window, b.clone()).is_err());
        let bad_alpha = DriftConfig {
            ewma_alpha: 0.0,
            ..DriftConfig::default()
        };
        assert!(DriftMonitor::new(bad_alpha, b.clone()).is_err());
        let mismatched = DriftConfig {
            rank_buckets: 4,
            ..DriftConfig::default()
        };
        assert!(DriftMonitor::new(mismatched, b).is_err());
    }

    #[test]
    fn unseen_ratio_breach_alarms_at_the_window_boundary() {
        let cfg = DriftConfig {
            window: 10,
            unseen_threshold: 0.2,
            // Disable the other statistics.
            psi_threshold: f64::INFINITY,
            min_sessions: u64::MAX,
            ..DriftConfig::default()
        };
        let monitor = DriftMonitor::new(cfg, flat_baseline(8, 0.0)).unwrap();
        // First window: 1/10 unseen — under the threshold.
        for i in 0..10u32 {
            monitor.on_record(if i == 0 { 0 } else { 1 + i % 3 });
        }
        assert_eq!(monitor.alarms(), 0);
        assert!((monitor.snapshot().last_unseen_ratio - 0.1).abs() < 1e-12);
        // Second window: 5/10 unseen — breach.
        for i in 0..10u32 {
            monitor.on_record(if i % 2 == 0 { 0 } else { 2 });
        }
        assert_eq!(monitor.alarms(), 1);
        assert!((monitor.snapshot().last_unseen_ratio - 0.5).abs() < 1e-12);
        assert!(monitor.drifted());
    }

    #[test]
    fn psi_flags_a_shifted_rank_distribution() {
        let cfg = DriftConfig {
            window: 100,
            unseen_threshold: f64::INFINITY,
            psi_threshold: 0.25,
            min_sessions: u64::MAX,
            rank_buckets: 4,
            ..DriftConfig::default()
        };
        // Baseline: nearly all mass on rank 0.
        let baseline = DriftBaseline {
            alert_rate: 0.0,
            rank_dist: vec![0.97, 0.01, 0.01, 0.01],
        };
        let monitor = DriftMonitor::new(cfg, baseline.clone()).unwrap();
        // Matching window: no alarm.
        for i in 0..100u64 {
            monitor.on_score(Some(usize::from(i % 25 == 24)), false);
            monitor.on_record(1);
        }
        assert_eq!(monitor.alarms(), 0);
        let calm_psi = monitor.snapshot().last_psi;
        assert!(calm_psi < 0.25, "calm PSI too high: {calm_psi}");
        // Shifted window: mass moves to the overflow bucket.
        let monitor = DriftMonitor::new(cfg, baseline).unwrap();
        for _ in 0..100u64 {
            monitor.on_score(Some(7), false);
            monitor.on_record(1);
        }
        assert_eq!(monitor.alarms(), 1);
        assert!(monitor.snapshot().last_psi > 0.25);
    }

    #[test]
    fn alert_rate_ewma_tracks_session_closes() {
        let cfg = DriftConfig {
            window: 4,
            ewma_alpha: 0.5,
            ewma_factor: 2.0,
            ewma_margin: 0.0,
            unseen_threshold: f64::INFINITY,
            psi_threshold: f64::INFINITY,
            min_sessions: 2,
            ..DriftConfig::default()
        };
        let monitor = DriftMonitor::new(cfg, flat_baseline(8, 0.1)).unwrap();
        // EWMA starts at the baseline rate.
        assert!((monitor.snapshot().alert_rate_ewma - 0.1).abs() < 1e-12);
        monitor.on_session_close(true);
        monitor.on_session_close(true);
        // 0.5*1 + 0.5*(0.5*1 + 0.5*0.1) = 0.775 > 0.1*2.0
        let ewma = monitor.snapshot().alert_rate_ewma;
        assert!((ewma - 0.775).abs() < 1e-12, "ewma = {ewma}");
        for _ in 0..4 {
            monitor.on_record(1);
        }
        assert_eq!(
            monitor.alarms(),
            1,
            "rate breach must alarm at the boundary"
        );
    }

    #[test]
    fn registered_metrics_mirror_the_snapshot() {
        let reg = Registry::new();
        let cfg = DriftConfig {
            window: 2,
            unseen_threshold: 0.4,
            psi_threshold: f64::INFINITY,
            min_sessions: u64::MAX,
            ..DriftConfig::default()
        };
        let monitor = DriftMonitor::new(cfg, flat_baseline(8, 0.0)).unwrap();
        monitor.register_metrics(&reg, &[]);
        monitor.on_record(0);
        monitor.on_record(0);
        let text = reg.render_prometheus();
        assert!(text.contains("ucad_life_records_total 2"));
        assert!(text.contains("ucad_life_unseen_total 2"));
        assert!(text.contains("ucad_life_drift_alarms_total 1"));
        assert!(text.contains("ucad_life_unseen_ratio 1"));
    }
}
