//! # ucad-life
//!
//! Model lifecycle for the UCAD serving system: the subsystem between
//! "reproduction" and "service". The paper (§2, §5.2, §6.3) assumes the
//! detector is periodically retrained as access patterns drift; this crate
//! supplies everything that prescription needs in production:
//!
//! * [`CheckpointStore`] — versioned, content-hashed, CRC-validated model
//!   checkpoints with a manifest index, atomic rename-on-commit writes and
//!   retention GC. Damage (truncation, bit flips) is reported as
//!   [`ucad_model::UcadError::Corrupt`], never a panic.
//! * [`DriftMonitor`] — a [`ucad::ServeObserver`] comparing sliding-window
//!   statistics (alert-rate EWMA, unseen-key ratio, PSI over top-*p* rank
//!   buckets) against a training-time [`DriftBaseline`], exported as
//!   `ucad_life_*` metrics and `life.drift_alarm` events.
//! * [`SessionJournal`] + [`Retrainer`] — a rolling corpus of
//!   verified-normal sessions and a background-thread trainer producing
//!   candidate models from it, deterministically.
//! * [`LifecycleManager`] — checkpointing plus the promotion path: a
//!   candidate must pass the [`shadow_validate`] gate on held-out sessions,
//!   is then committed to the store, **reloaded from its own checkpoint**,
//!   and atomically hot-swapped into the serving engine — so post-swap
//!   serving is byte-identical to a cold start on the promoted checkpoint
//!   by construction.
//!
//! ```no_run
//! use ucad::prelude::*;
//! use ucad_life::{CheckpointStore, GateConfig, LifecycleManager, Retrainer};
//!
//! # fn demo(system: Ucad, journal: ucad_life::SessionJournal) -> Result<(), UcadError> {
//! let mut engine = ShardedOnlineUcad::try_new(system, ServeConfig::default())?;
//! let store = CheckpointStore::open("checkpoints", 4)?;
//! let mut life = LifecycleManager::new(store, GateConfig::default());
//! life.checkpoint(&engine.system().model)?;
//! // ... serve; on a drift alarm:
//! let (train, holdout) = journal.split_holdout(5);
//! let candidate = Retrainer::spawn(engine.system().model.cfg, train)?.join().model;
//! let outcome = life.promote(&mut engine, candidate, &holdout)?;
//! println!("{outcome:?}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod crc32;
pub mod drift;
pub mod journal;
pub mod retrain;
pub mod store;

pub use drift::{DriftBaseline, DriftConfig, DriftMonitor, DriftSnapshot};
pub use journal::SessionJournal;
pub use retrain::{shadow_validate, GateConfig, GateReport, RetrainOutcome, Retrainer};
pub use store::CheckpointStore;

use ucad::ShardedOnlineUcad;
use ucad_model::{TransDas, UcadError};

/// Outcome of a promotion attempt.
#[derive(Debug)]
pub enum Promotion {
    /// The candidate passed the gate, was checkpointed, and is now serving.
    Swapped {
        /// Version id of the promoted checkpoint.
        id: String,
        /// Serving-engine model epoch after the swap.
        epoch: u64,
        /// The gate evidence behind the promotion.
        gate: GateReport,
    },
    /// The candidate failed the shadow gate and was not swapped in.
    Rejected(GateReport),
}

impl Promotion {
    /// True when the candidate is now serving.
    pub fn swapped(&self) -> bool {
        matches!(self, Promotion::Swapped { .. })
    }
}

/// Checkpointing plus the gated promotion path around a serving engine.
#[derive(Debug)]
pub struct LifecycleManager {
    store: CheckpointStore,
    gate: GateConfig,
}

impl LifecycleManager {
    /// Wraps a checkpoint store and a promotion-gate configuration.
    pub fn new(store: CheckpointStore, gate: GateConfig) -> Self {
        LifecycleManager { store, gate }
    }

    /// Read access to the checkpoint store.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Commits a model snapshot and returns its version id.
    pub fn checkpoint(&mut self, model: &TransDas) -> Result<String, UcadError> {
        self.store.save(model)
    }

    /// Runs the full promotion protocol for a candidate model:
    ///
    /// 1. **shadow gate** — the candidate and the currently serving model
    ///    are both evaluated on `holdout` (verified-normal sessions); the
    ///    candidate must stay under the gate's false-alarm ceiling and must
    ///    not regress the serving rate beyond the configured slack;
    /// 2. **commit** — the candidate is saved to the checkpoint store
    ///    (atomic rename, manifest update, retention GC);
    /// 3. **reload** — the model is loaded back *from the checkpoint just
    ///    written*, so what swaps in is bit-identical to what any cold
    ///    start on this version would serve;
    /// 4. **hot-swap** — [`ShardedOnlineUcad::swap_model`] installs it at a
    ///    flush-barrier cut with score-cache epoch invalidation.
    ///
    /// A gate failure returns [`Promotion::Rejected`] (not an error): the
    /// engine keeps serving the old model and the store is untouched.
    pub fn promote(
        &mut self,
        engine: &mut ShardedOnlineUcad,
        candidate: TransDas,
        holdout: &[Vec<u32>],
    ) -> Result<Promotion, UcadError> {
        let gate = shadow_validate(
            &candidate,
            &engine.system().model,
            engine.system().detector,
            holdout,
            &self.gate,
        );
        if !gate.pass {
            ucad_obs::event(
                "life.promotion_rejected",
                &[(
                    "reason",
                    gate.reason.clone().unwrap_or_else(|| "gate failed".into()),
                )],
            );
            return Ok(Promotion::Rejected(gate));
        }
        let id = self.store.save(&candidate)?;
        let promoted = self.store.load(&id)?;
        let epoch = engine.swap_model(promoted)?;
        ucad_obs::event(
            "life.promotion",
            &[
                ("id", id.clone()),
                ("epoch", epoch.to_string()),
                ("candidate_rate", format!("{:.6}", gate.candidate_rate)),
                ("serving_rate", format!("{:.6}", gate.serving_rate)),
            ],
        );
        Ok(Promotion::Swapped { id, epoch, gate })
    }
}
