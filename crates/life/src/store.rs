//! Versioned, integrity-checked checkpoint store.
//!
//! A checkpoint is the [`TransDas::to_json`] snapshot wrapped in a small
//! binary envelope:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "UCADCKP1"
//! 8       4     payload length, u32 little-endian
//! 12      4     CRC-32 (IEEE) of the payload, u32 little-endian
//! 16      n     payload: the model snapshot JSON
//! ```
//!
//! Version identifiers are **content hashes** (FNV-1a 64 of the payload), so
//! saving the same weights twice is idempotent and a checkpoint can never be
//! silently overwritten with different content. A `MANIFEST.json` in the
//! store directory indexes the versions in commit order.
//!
//! Durability discipline: both checkpoint files and the manifest are written
//! to a temporary name and atomically renamed into place, so a crash mid-save
//! leaves the store exactly as it was — the manifest never references a
//! partially written file. [`CheckpointStore::load`] re-validates the whole
//! envelope (magic, exact length, CRC) and returns
//! [`UcadError::Corrupt`] for any damage — truncation, bit flips, trailing
//! garbage, or a payload the model codec rejects — and never panics.
//! Retention is enforced on save: the oldest versions beyond the configured
//! count are dropped from the manifest and their files deleted.
//!
//! Transient I/O resilience: every read/write/rename goes through the
//! `ucad-fault` fs shim (a pass-through to `std::fs` when no fault plan is
//! armed) and retries up to [`ucad_wal::IO_RETRIES`] times with a bounded,
//! deterministic backoff (1 ms, 2 ms, 4 ms) before surfacing
//! [`UcadError::Io`]. Corruption is *never* retried: a damaged envelope is
//! the same bytes on every read, so [`UcadError::Corrupt`] surfaces
//! immediately.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use ucad_model::{TransDas, UcadError};
use ucad_wal::crc32::crc32;
use ucad_wal::envelope;
use ucad_wal::{fnv1a64, retry_io};

const MAGIC: &[u8; 8] = b"UCADCKP1";
const MANIFEST_FILE: &str = "MANIFEST.json";
const MANIFEST_VERSION: u32 = 1;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    /// Content-hash version id (`v` + 16 hex digits).
    id: String,
    /// Size of the checkpoint file in bytes.
    bytes: u64,
    /// CRC-32 of the payload, duplicated here so a reader can audit the
    /// store without opening every file.
    crc32: u32,
    /// Commit sequence number (monotonic per store).
    seq: u64,
}

#[derive(Debug, Default, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    next_seq: u64,
    /// Versions in commit order, oldest first.
    entries: Vec<ManifestEntry>,
}

/// A directory of versioned model checkpoints with a manifest index.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    retention: usize,
    manifest: Manifest,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint store at `dir`, keeping at
    /// most `retention` versions. An existing manifest is loaded and
    /// validated; a damaged one is reported as [`UcadError::Corrupt`]
    /// rather than silently reset, so no checkpoints are garbage-collected
    /// off a lie.
    pub fn open(dir: impl Into<PathBuf>, retention: usize) -> Result<Self, UcadError> {
        if retention == 0 {
            return Err(UcadError::invalid(
                "retention",
                "a store keeping zero checkpoints cannot serve reloads",
            ));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| UcadError::io(dir.display().to_string(), &e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = if manifest_path.exists() {
            let bytes = retry_io(|| ucad_fault::fs_read(&manifest_path))
                .map_err(|e| UcadError::io(manifest_path.display().to_string(), &e))?;
            let text = String::from_utf8(bytes).map_err(|e| {
                UcadError::corrupt(
                    manifest_path.display().to_string(),
                    format!("manifest is not UTF-8: {e}"),
                )
            })?;
            let manifest: Manifest = serde_json::from_str(&text).map_err(|e| {
                UcadError::corrupt(
                    manifest_path.display().to_string(),
                    format!("manifest is not valid JSON: {e}"),
                )
            })?;
            if manifest.version != MANIFEST_VERSION {
                return Err(UcadError::corrupt(
                    manifest_path.display().to_string(),
                    format!(
                        "manifest version {} (supported: {MANIFEST_VERSION})",
                        manifest.version
                    ),
                ));
            }
            manifest
        } else {
            Manifest {
                version: MANIFEST_VERSION,
                ..Manifest::default()
            }
        };
        Ok(CheckpointStore {
            dir,
            retention,
            manifest,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Version ids in commit order, oldest first.
    pub fn versions(&self) -> Vec<String> {
        self.manifest.entries.iter().map(|e| e.id.clone()).collect()
    }

    /// The most recently committed version id, if any.
    pub fn latest(&self) -> Option<String> {
        self.manifest.entries.last().map(|e| e.id.clone())
    }

    /// Path of a version's checkpoint file.
    pub fn path_of(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.ckpt"))
    }

    /// Commits a model snapshot and returns its version id.
    ///
    /// Saving weights that are already the content of a resident version is
    /// idempotent: the existing version is re-committed as latest (no file
    /// is rewritten). Otherwise the envelope is written to a temporary file
    /// and renamed into place, the manifest is updated the same way, and
    /// versions beyond the retention count are garbage-collected oldest
    /// first.
    pub fn save(&mut self, model: &TransDas) -> Result<String, UcadError> {
        let payload = model.to_json().into_bytes();
        let id = format!("v{:016x}", fnv1a64(&payload));
        let seq = self.manifest.next_seq;
        self.manifest.next_seq += 1;
        if let Some(pos) = self.manifest.entries.iter().position(|e| e.id == id) {
            // Content already committed: refresh its recency only.
            let mut entry = self.manifest.entries.remove(pos);
            entry.seq = seq;
            self.manifest.entries.push(entry);
            self.write_manifest()?;
            return Ok(id);
        }

        let crc = crc32(&payload);
        let bytes = envelope::encode(MAGIC, &payload);

        let final_path = self.path_of(&id);
        let tmp_path = self.dir.join(format!(".tmp-{id}"));
        retry_io(|| ucad_fault::fs_write(&tmp_path, &bytes))
            .map_err(|e| UcadError::io(tmp_path.display().to_string(), &e))?;
        retry_io(|| ucad_fault::fs_rename(&tmp_path, &final_path))
            .map_err(|e| UcadError::io(final_path.display().to_string(), &e))?;

        self.manifest.entries.push(ManifestEntry {
            id: id.clone(),
            bytes: bytes.len() as u64,
            crc32: crc,
            seq,
        });
        while self.manifest.entries.len() > self.retention {
            let dropped = self.manifest.entries.remove(0);
            // Best-effort file removal: the version is gone from the
            // manifest either way, and an orphaned file is harmless.
            let _ = std::fs::remove_file(self.path_of(&dropped.id));
        }
        self.write_manifest()?;
        ucad_obs::event(
            "life.checkpoint",
            &[
                ("id", id.clone()),
                ("bytes", bytes.len().to_string()),
                ("resident", self.manifest.entries.len().to_string()),
            ],
        );
        Ok(id)
    }

    /// Commits the manifest with the same tmp-then-rename discipline as the
    /// checkpoint files.
    fn write_manifest(&self) -> Result<(), UcadError> {
        let path = self.dir.join(MANIFEST_FILE);
        let tmp = self.dir.join(".tmp-manifest");
        let text =
            serde_json::to_string(&self.manifest).expect("manifest serialization cannot fail");
        retry_io(|| ucad_fault::fs_write(&tmp, text.as_bytes()))
            .map_err(|e| UcadError::io(tmp.display().to_string(), &e))?;
        retry_io(|| ucad_fault::fs_rename(&tmp, &path))
            .map_err(|e| UcadError::io(path.display().to_string(), &e))?;
        Ok(())
    }

    /// Loads and fully validates a version. Every failure mode — missing
    /// file, short read, bad magic, wrong length, CRC mismatch, undecodable
    /// payload — comes back as [`UcadError::Io`] or [`UcadError::Corrupt`];
    /// this path never panics.
    pub fn load(&self, id: &str) -> Result<TransDas, UcadError> {
        let path = self.path_of(id);
        let bytes = retry_io(|| ucad_fault::fs_read(&path))
            .map_err(|e| UcadError::io(path.display().to_string(), &e))?;
        Self::decode(&bytes, &path.display().to_string())
    }

    /// Loads the latest version, or `None` on an empty store.
    pub fn load_latest(&self) -> Result<Option<TransDas>, UcadError> {
        match self.latest() {
            Some(id) => self.load(&id).map(Some),
            None => Ok(None),
        }
    }

    /// Decodes a checkpoint envelope from raw bytes; `origin` labels the
    /// byte source in errors. Public so robustness tests (and external
    /// tooling) can validate envelopes without a store.
    pub fn decode(bytes: &[u8], origin: &str) -> Result<TransDas, UcadError> {
        let payload = envelope::decode(MAGIC, bytes, origin)?;
        let json = std::str::from_utf8(payload)
            .map_err(|e| UcadError::corrupt(origin, format!("payload is not UTF-8: {e}")))?;
        TransDas::from_json(json).map_err(|e| {
            UcadError::corrupt(origin, format!("payload rejected by model codec: {e}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucad_model::{MaskMode, TransDasConfig};
    use ucad_wal::envelope::HEADER_LEN;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ucad-life-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_model(seed_epochs: usize) -> TransDas {
        let cfg = TransDasConfig {
            vocab_size: 8,
            hidden: 8,
            heads: 2,
            blocks: 1,
            window: 6,
            epochs: seed_epochs,
            dropout_keep: 1.0,
            threads: 1,
            mask: MaskMode::TransDas,
            ..TransDasConfig::scenario1(8)
        };
        let mut model = TransDas::new(cfg);
        let sessions: Vec<Vec<u32>> = (0..4)
            .map(|i| (0..8).map(|j| ((i + j) % 4) as u32 + 1).collect())
            .collect();
        model.train(&sessions);
        model
    }

    #[test]
    fn save_load_roundtrips_and_is_content_addressed() {
        let dir = tmp_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir, 4).expect("open");
        let model = tiny_model(2);
        let id = store.save(&model).expect("save");
        assert!(id.starts_with('v') && id.len() == 17);
        // Saving identical content is idempotent.
        assert_eq!(store.save(&model).expect("resave"), id);
        assert_eq!(store.versions(), vec![id.clone()]);
        let restored = store.load(&id).expect("load");
        assert_eq!(restored.to_json(), model.to_json());
        // A reopened store sees the committed version.
        let reopened = CheckpointStore::open(&dir, 4).expect("reopen");
        assert_eq!(reopened.latest(), Some(id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_exactly_the_configured_count() {
        let dir = tmp_dir("retention");
        let mut store = CheckpointStore::open(&dir, 2).expect("open");
        let ids: Vec<String> = (1..=4)
            .map(|epochs| store.save(&tiny_model(epochs)).expect("save"))
            .collect();
        assert_eq!(store.versions(), ids[2..].to_vec());
        // GC removed the evicted files, kept the resident ones.
        assert!(!store.path_of(&ids[0]).exists());
        assert!(!store.path_of(&ids[1]).exists());
        assert!(store.path_of(&ids[2]).exists());
        assert!(store.path_of(&ids[3]).exists());
        assert!(store.load(&ids[3]).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_is_reported_as_corrupt_never_panics() {
        let dir = tmp_dir("damage");
        let mut store = CheckpointStore::open(&dir, 2).expect("open");
        let id = store.save(&tiny_model(1)).expect("save");
        let path = store.path_of(&id);
        let good = std::fs::read(&path).expect("read");

        // Truncation.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(store.load(&id), Err(UcadError::Corrupt { .. })));
        // Bit flip in the payload.
        let mut flipped = good.clone();
        let mid = HEADER_LEN + (flipped.len() - HEADER_LEN) / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(store.load(&id), Err(UcadError::Corrupt { .. })));
        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(store.load(&id), Err(UcadError::Corrupt { .. })));
        // Trailing garbage.
        let mut padded = good.clone();
        padded.extend_from_slice(b"xx");
        std::fs::write(&path, &padded).unwrap();
        assert!(matches!(store.load(&id), Err(UcadError::Corrupt { .. })));
        // Missing file.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(store.load(&id), Err(UcadError::Io { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_rejected_on_open() {
        let dir = tmp_dir("manifest");
        let mut store = CheckpointStore::open(&dir, 2).expect("open");
        store.save(&tiny_model(1)).expect("save");
        std::fs::write(dir.join(MANIFEST_FILE), b"{broken").unwrap();
        assert!(matches!(
            CheckpointStore::open(&dir, 2),
            Err(UcadError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_retention_is_rejected() {
        assert!(matches!(
            CheckpointStore::open(tmp_dir("zero"), 0),
            Err(UcadError::InvalidConfig { .. })
        ));
    }

    /// A save whose writes fail transiently must succeed through the retry
    /// path: the first three injected failures are absorbed by the 3-retry
    /// budget of the first faulted operation.
    #[test]
    fn save_retries_through_transient_io_failures() {
        let dir = tmp_dir("flaky-save");
        let mut store = CheckpointStore::open(&dir, 4).expect("open");
        let model = tiny_model(2);
        let guard = ucad_fault::FaultPlan::new()
            .fs_fail_ops(3)
            .fs_scope(&dir)
            .arm();
        let id = store
            .save(&model)
            .expect("save must survive 3 transient failures");
        drop(guard);
        let restored = store.load(&id).expect("load after flaky save");
        assert_eq!(restored.to_json(), model.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// More consecutive failures than the retry budget must surface
    /// [`UcadError::Io`] — the store does not spin forever.
    #[test]
    fn save_surfaces_io_after_retry_budget_exhausted() {
        let dir = tmp_dir("flaky-exhausted");
        let mut store = CheckpointStore::open(&dir, 4).expect("open");
        let guard = ucad_fault::FaultPlan::new()
            .fs_fail_ops(4)
            .fs_scope(&dir)
            .arm();
        let result = store.save(&tiny_model(2));
        assert!(
            matches!(result, Err(UcadError::Io { .. })),
            "4 consecutive failures exceed the 3-retry budget: {:?}",
            result.map(|_| "unexpected Ok").err()
        );
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A transient read failure on load is retried; a corrupted payload is
    /// not — the same bytes come back on every read, so [`UcadError::Corrupt`]
    /// surfaces after exactly one read.
    #[test]
    fn load_retries_io_but_never_retries_corruption() {
        let dir = tmp_dir("flaky-load");
        let mut store = CheckpointStore::open(&dir, 4).expect("open");
        let model = tiny_model(3);
        let id = store.save(&model).expect("save");

        let guard = ucad_fault::FaultPlan::new()
            .fs_fail_ops(2)
            .fs_scope(&dir)
            .arm();
        let restored = store
            .load(&id)
            .expect("load must retry past 2 transient failures");
        assert_eq!(restored.to_json(), model.to_json());
        assert_eq!(guard.stats().fs_injected_io, 2);
        drop(guard);

        let guard = ucad_fault::FaultPlan::new()
            .fs_corrupt_reads(1)
            .fs_scope(&dir)
            .arm();
        let result = store.load(&id);
        assert!(
            matches!(result, Err(UcadError::Corrupt { .. })),
            "bit-flipped payload must surface as Corrupt: {:?}",
            result.map(|_| "unexpected Ok").err()
        );
        let stats = guard.stats();
        assert_eq!(
            stats.fs_ops, 1,
            "corruption must not be retried: expected exactly one read, saw {}",
            stats.fs_ops
        );
        drop(guard);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
