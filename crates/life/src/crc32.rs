//! CRC-32 (IEEE), re-exported from `ucad-wal`.
//!
//! The implementation originated here (PR 4's checkpoint store) and moved
//! to `ucad-wal` when the WAL generalized the envelope discipline into a
//! shared crate; this shim keeps `ucad_life::crc32::crc32` working for
//! existing callers and robustness tests.

pub use ucad_wal::crc32::crc32;
