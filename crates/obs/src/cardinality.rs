//! Label-cardinality guard for per-tenant (and other unbounded-identifier)
//! metric labels.
//!
//! Prometheus scrape cost and registry memory both grow with the number of
//! distinct label values, and a fleet that serves tenants keyed by caller
//! input could mint an unbounded series set. [`LabelGuard`] bounds that:
//! the first `limit` distinct values pass through verbatim, every later
//! value collapses onto the single [`LabelGuard::OVERFLOW`] series (so the
//! traffic is still counted, just not attributed), and the collapses are
//! themselves counted for alerting. Admission is idempotent — a value
//! admitted before the limit keeps resolving to itself forever, so a
//! tenant's series never flaps between its own name and the overflow
//! bucket.

use crate::registry::{Counter, Registry};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Bounds the distinct values of one metric label (e.g. `tenant`).
pub struct LabelGuard {
    limit: usize,
    seen: Mutex<BTreeSet<String>>,
    clamped: Counter,
}

impl LabelGuard {
    /// The label value every post-limit identifier collapses onto.
    pub const OVERFLOW: &'static str = "_overflow";

    /// A guard admitting at most `limit` distinct values.
    ///
    /// # Panics
    /// Panics when `limit` is zero — a guard that admits nothing would make
    /// every series anonymous, which is a configuration error, not a
    /// runtime condition.
    pub fn new(limit: usize) -> Self {
        assert!(limit >= 1, "label guard needs room for at least one value");
        LabelGuard {
            limit,
            seen: Mutex::new(BTreeSet::new()),
            clamped: Counter::new(),
        }
    }

    /// Resolves `value` to the label value to expose: `value` itself while
    /// the distinct-value budget lasts (or when it was admitted earlier),
    /// [`LabelGuard::OVERFLOW`] afterwards.
    pub fn admit(&self, value: &str) -> String {
        let mut seen = self.seen.lock().expect("label guard poisoned");
        if seen.contains(value) {
            return value.to_string();
        }
        if seen.len() < self.limit {
            seen.insert(value.to_string());
            return value.to_string();
        }
        self.clamped.inc();
        Self::OVERFLOW.to_string()
    }

    /// Distinct values admitted so far.
    pub fn seen(&self) -> usize {
        self.seen.lock().expect("label guard poisoned").len()
    }

    /// Admissions that collapsed onto the overflow series.
    pub fn clamped(&self) -> u64 {
        self.clamped.get()
    }

    /// Exposes the clamp counter on `registry` as
    /// `<name>` (e.g. `ucad_tenant_label_clamped_total`).
    pub fn register_metrics(&self, registry: &Registry, name: &str) {
        registry.register_counter(name, &[], &self.clamped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn values_pass_until_the_limit_then_collapse() {
        let guard = LabelGuard::new(2);
        assert_eq!(guard.admit("tenant-a"), "tenant-a");
        assert_eq!(guard.admit("tenant-b"), "tenant-b");
        assert_eq!(guard.admit("tenant-c"), LabelGuard::OVERFLOW);
        assert_eq!(guard.admit("tenant-d"), LabelGuard::OVERFLOW);
        assert_eq!(guard.seen(), 2);
        assert_eq!(guard.clamped(), 2);
    }

    #[test]
    fn admission_is_idempotent_across_the_limit() {
        let guard = LabelGuard::new(1);
        assert_eq!(guard.admit("t0"), "t0");
        assert_eq!(guard.admit("t1"), LabelGuard::OVERFLOW);
        // The pre-limit value keeps resolving to itself; no series flap.
        assert_eq!(guard.admit("t0"), "t0");
        assert_eq!(guard.clamped(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_limit_is_rejected() {
        LabelGuard::new(0);
    }

    #[test]
    fn clamp_counter_is_exposable() {
        let reg = Registry::new();
        let guard = LabelGuard::new(1);
        guard.register_metrics(&reg, "ucad_tenant_label_clamped_total");
        guard.admit("a");
        guard.admit("b");
        assert!(reg
            .render_prometheus()
            .contains("ucad_tenant_label_clamped_total 1"));
    }

    #[test]
    fn guarded_tenant_labels_escape_like_any_label() {
        // A hostile tenant identifier with every special character must
        // round-trip the guard and come out escaped in the exposition.
        let reg = Registry::new();
        let guard = LabelGuard::new(4);
        let hostile = "t\"quote\\slash\nline";
        let label = guard.admit(hostile);
        assert_eq!(label, hostile, "guard must not alter admitted values");
        reg.counter("ucad_serve_records_total", &[("tenant", &label)])
            .inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("ucad_serve_records_total{tenant=\"t\\\"quote\\\\slash\\nline\"} 1"),
            "bad tenant-label escaping in: {text}"
        );
    }

    #[test]
    fn overflow_series_aggregates_instead_of_dropping() {
        let reg = Registry::new();
        let guard = LabelGuard::new(1);
        for tenant in ["a", "b", "c"] {
            let label = guard.admit(tenant);
            reg.counter("ucad_serve_records_total", &[("tenant", &label)])
                .inc();
        }
        let text = reg.render_prometheus();
        assert!(text.contains("ucad_serve_records_total{tenant=\"a\"} 1"));
        assert!(
            text.contains("ucad_serve_records_total{tenant=\"_overflow\"} 2"),
            "overflow traffic must still be counted: {text}"
        );
    }
}
