//! The metrics registry: atomic counters, gauges and fixed-bucket
//! histograms with labels, plus Prometheus text exposition and a JSON
//! snapshot for tests.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s over plain
//! atomics and can exist standalone — a subsystem may own its counters for
//! exact per-instance statistics (the score cache does) and *register* the
//! same handles into a registry for exposition. Registration and rendering
//! take the registry mutex; every increment on a handle is lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone event counter.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Instantaneous value (stored as `f64` bits; integral gauges like queue
/// depths simply use whole numbers).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (may be negative) and returns the new value.
    pub fn add(&self, d: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(cur) + d;
            match self.bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    /// Strictly increasing upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `len = bounds.len()+1`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// Fixed-bucket histogram with `le` (less-or-equal) bucket semantics: an
/// observation lands in the first bucket whose upper bound is `>= value`;
/// anything above the last bound lands in the implicit `+Inf` bucket.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

/// Point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds (`+Inf` excluded).
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts, `bounds.len() + 1` entries (the
    /// last is the `+Inf` bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    /// Creates a standalone histogram over the given upper bounds.
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// A histogram with log-spaced bounds covering `[min, max]` at
    /// `per_decade` buckets per decade — the high-resolution shape every
    /// latency metric uses, bounded relative error at any scale from
    /// microseconds to seconds. See [`log_bounds`].
    pub fn log_bucketed(min: f64, max: f64, per_decade: usize) -> Self {
        Histogram::new(&log_bounds(min, max, per_decade))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let c = &self.core;
        // `le` semantics: the first bound >= v. Bounds are strictly
        // increasing, so a binary search replaces the linear scan — the
        // log-bucketed latency histograms carry ~50 bounds.
        let idx = if v.is_nan() {
            c.bounds.len()
        } else {
            c.bounds.partition_point(|&b| b < v)
        };
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = c.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(cur) + v;
            match c.sum_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Copies out bounds, buckets, count and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.core.bounds.clone(),
            buckets: self
                .core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.core.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Log-spaced histogram bounds: `per_decade` buckets per decade from `min`
/// up to the first bound at or above `max`. Bounds are exact powers
/// `min * 10^(i/per_decade)`, so the vector is strictly increasing and a
/// bucket's relative width is constant (~58% at 5/decade) at every scale.
///
/// # Panics
/// Panics when `min <= 0`, `max <= min` or `per_decade == 0`.
pub fn log_bounds(min: f64, max: f64, per_decade: usize) -> Vec<f64> {
    assert!(min > 0.0, "log bounds need a positive minimum");
    assert!(max > min, "log bounds need max > min");
    assert!(
        per_decade > 0,
        "log bounds need at least one bucket per decade"
    );
    let mut bounds = Vec::new();
    let mut i = 0usize;
    loop {
        let b = min * 10f64.powf(i as f64 / per_decade as f64);
        // powf is monotone here, but guard against FP ties all the same.
        if bounds.last().is_none_or(|&prev| b > prev) {
            bounds.push(b);
        }
        if b >= max {
            return bounds;
        }
        i += 1;
    }
}

/// The quantiles every histogram exposes, as `(prometheus label, JSON key,
/// q)` triples.
pub const EXPOSED_QUANTILES: [(&str, &str, f64); 4] = [
    ("0.5", "p50", 0.5),
    ("0.9", "p90", 0.9),
    ("0.99", "p99", 0.99),
    ("0.999", "p999", 0.999),
];

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket holding the target rank, the same estimator
    /// Prometheus' `histogram_quantile` applies server-side — exact at
    /// bucket boundaries, bounded by the bucket's width inside it.
    ///
    /// Assumes non-negative observations (the first bucket interpolates
    /// from 0). Returns `None` on an empty histogram; ranks landing in the
    /// `+Inf` overflow bucket clamp to the last finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || self.bounds.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let before = cum;
            cum += n;
            if n == 0 || (cum as f64) < target {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Overflow bucket: no finite upper edge to interpolate
                // toward; clamp to the largest finite bound.
                return self.bounds.last().copied();
            };
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            let frac = ((target - before as f64) / n as f64).clamp(0.0, 1.0);
            return Some(lower + (upper - lower) * frac);
        }
        self.bounds.last().copied()
    }
}

/// What a metric family is, for `# TYPE` lines and snapshot consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Family {
    kind: MetricKind,
    help: Option<&'static str>,
    /// Rendered label set (`{k="v",...}` or empty) -> handle. BTreeMap so
    /// exposition order is deterministic.
    series: BTreeMap<String, Handle>,
}

/// One series in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name (e.g. `ucad_cache_hits_total`).
    pub name: String,
    /// Rendered label set, `{k="v",...}` or empty.
    pub labels: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Counter value (counters only).
    pub counter: Option<u64>,
    /// Gauge value (gauges only).
    pub gauge: Option<f64>,
    /// Histogram state (histograms only).
    pub histogram: Option<HistogramSnapshot>,
}

/// A set of named metric families. Cheap to create; engines own private
/// registries while process-wide instrumentation uses [`crate::global`].
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Escapes a label value per the Prometheus text format: backslash, double
/// quote and newline.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a sorted, escaped label set: `{a="x",b="y"}`, or `""` when empty.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Inserts extra labels (e.g. `le`) into a rendered label set.
fn labels_with(rendered: &str, extra: &str) -> String {
    if rendered.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &rendered[..rendered.len() - 1])
    }
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn with_family<R>(&self, name: &str, kind: MetricKind, f: impl FnOnce(&mut Family) -> R) -> R {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: None,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?} and requested as {kind:?}",
            family.kind
        );
        f(family)
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = render_labels(labels);
        self.with_family(name, MetricKind::Counter, |fam| {
            match fam
                .series
                .entry(key)
                .or_insert_with(|| Handle::Counter(Counter::new()))
            {
                Handle::Counter(c) => c.clone(),
                _ => unreachable!("kind checked by with_family"),
            }
        })
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = render_labels(labels);
        self.with_family(name, MetricKind::Gauge, |fam| {
            match fam
                .series
                .entry(key)
                .or_insert_with(|| Handle::Gauge(Gauge::new()))
            {
                Handle::Gauge(g) => g.clone(),
                _ => unreachable!("kind checked by with_family"),
            }
        })
    }

    /// Gets or creates a histogram series over `bounds` (used only when the
    /// series does not exist yet).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let key = render_labels(labels);
        self.with_family(name, MetricKind::Histogram, |fam| {
            match fam
                .series
                .entry(key)
                .or_insert_with(|| Handle::Histogram(Histogram::new(bounds)))
            {
                Handle::Histogram(h) => h.clone(),
                _ => unreachable!("kind checked by with_family"),
            }
        })
    }

    /// Registers an existing counter handle under `name{labels}` (replacing
    /// any previous series with the same name and labels). Lets a subsystem
    /// own its counters for exact per-instance stats while still exposing
    /// them here.
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], handle: &Counter) {
        let key = render_labels(labels);
        self.with_family(name, MetricKind::Counter, |fam| {
            fam.series.insert(key, Handle::Counter(handle.clone()));
        });
    }

    /// Registers an existing gauge handle (see [`Registry::register_counter`]).
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], handle: &Gauge) {
        let key = render_labels(labels);
        self.with_family(name, MetricKind::Gauge, |fam| {
            fam.series.insert(key, Handle::Gauge(handle.clone()));
        });
    }

    /// Registers an existing histogram handle (see [`Registry::register_counter`]).
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], handle: &Histogram) {
        let key = render_labels(labels);
        self.with_family(name, MetricKind::Histogram, |fam| {
            fam.series.insert(key, Handle::Histogram(handle.clone()));
        });
    }

    /// Attaches a `# HELP` line to a metric family (creating it if needed
    /// with the given kind).
    pub fn describe(&self, name: &str, kind: MetricKind, help: &'static str) {
        self.with_family(name, kind, |fam| fam.help = Some(help));
    }

    /// Copies out every series.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = Vec::new();
        for (name, fam) in families.iter() {
            for (labels, handle) in fam.series.iter() {
                out.push(MetricSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    kind: handle.kind(),
                    counter: match handle {
                        Handle::Counter(c) => Some(c.get()),
                        _ => None,
                    },
                    gauge: match handle {
                        Handle::Gauge(g) => Some(g.get()),
                        _ => None,
                    },
                    histogram: match handle {
                        Handle::Histogram(h) => Some(h.snapshot()),
                        _ => None,
                    },
                });
            }
        }
        out
    }

    /// Renders the Prometheus text exposition format (`# TYPE`/`# HELP`
    /// comments, cumulative `_bucket{le=...}` histogram series, `_sum` and
    /// `_count`).
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, fam) in families.iter() {
            if let Some(help) = fam.help {
                out.push_str(&format!("# HELP {name} {help}\n"));
            }
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.as_str()));
            for (labels, handle) in fam.series.iter() {
                match handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", fmt_f64(g.get())));
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, b) in snap.buckets.iter().enumerate() {
                            cum += b;
                            let le = snap
                                .bounds
                                .get(i)
                                .copied()
                                .map(fmt_f64)
                                .unwrap_or_else(|| "+Inf".to_string());
                            let ls = labels_with(labels, &format!("le=\"{le}\""));
                            out.push_str(&format!("{name}_bucket{ls} {cum}\n"));
                        }
                        out.push_str(&format!("{name}_sum{labels} {}\n", fmt_f64(snap.sum)));
                        out.push_str(&format!("{name}_count{labels} {}\n", snap.count));
                        for (tag, _, q) in EXPOSED_QUANTILES {
                            if let Some(v) = snap.quantile(q) {
                                let ls = labels_with(labels, &format!("quantile=\"{tag}\""));
                                out.push_str(&format!("{name}_quantile{ls} {}\n", fmt_f64(v)));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Renders a JSON array of series snapshots, e.g.
    /// `[{"name":"...","labels":"...","kind":"counter","value":3}, ...]`.
    /// Histograms carry `buckets`, `bounds`, `count` and `sum`.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("[");
        for (i, m) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"kind\":\"{}\"",
                escape_json(&m.name),
                escape_json(&m.labels),
                m.kind.as_str()
            ));
            if let Some(v) = m.counter {
                out.push_str(&format!(",\"value\":{v}"));
            }
            if let Some(v) = m.gauge {
                out.push_str(&format!(",\"value\":{}", json_f64(v)));
            }
            if let Some(h) = &m.histogram {
                let bounds: Vec<String> = h.bounds.iter().map(|&b| json_f64(b)).collect();
                let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                out.push_str(&format!(
                    ",\"bounds\":[{}],\"buckets\":[{}],\"count\":{},\"sum\":{}",
                    bounds.join(","),
                    buckets.join(","),
                    h.count,
                    json_f64(h.sum)
                ));
                let quantiles: Vec<String> = EXPOSED_QUANTILES
                    .iter()
                    .filter_map(|(_, key, q)| {
                        h.quantile(*q).map(|v| format!("\"{key}\":{}", json_f64(v)))
                    })
                    .collect();
                if !quantiles.is_empty() {
                    out.push_str(&format!(",\"quantiles\":{{{}}}", quantiles.join(",")));
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN literals; quote them.
        format!("\"{v}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("ucad_test_total", &[("shard", "0")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels resolves to the same cell.
        assert_eq!(reg.counter("ucad_test_total", &[("shard", "0")]).get(), 5);
        let g = reg.gauge("ucad_test_depth", &[]);
        g.set(3.0);
        assert_eq!(g.add(-1.0), 2.0);
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        reg.counter("m", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("m", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.counter("m", &[("a", "1"), ("b", "2")]).get(), 2);
    }

    // -- Histogram bucketing edge cases (satellite coverage) ---------------

    #[test]
    fn histogram_underflow_lands_in_first_bucket() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(-100.0);
        h.observe(0.0);
        h.observe(0.999);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![3, 0, 0, 0]);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn histogram_overflow_lands_in_inf_bucket_only() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(4.0001);
        h.observe(1e300);
        h.observe(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![0, 0, 0, 3]);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn histogram_exact_boundary_is_le_inclusive() {
        // `le` semantics: a value exactly on a bound belongs to that bucket.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 1, 1, 0]);
        assert!((s.sum - 7.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_cumulative_rendering_is_monotone_and_complete() {
        let reg = Registry::new();
        let h = reg.histogram("ucad_test_seconds", &[("span", "x")], &[0.5, 1.0]);
        for v in [0.1, 0.6, 0.7, 5.0] {
            h.observe(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ucad_test_seconds histogram"));
        assert!(text.contains("ucad_test_seconds_bucket{span=\"x\",le=\"0.5\"} 1"));
        assert!(text.contains("ucad_test_seconds_bucket{span=\"x\",le=\"1\"} 3"));
        assert!(text.contains("ucad_test_seconds_bucket{span=\"x\",le=\"+Inf\"} 4"));
        assert!(text.contains("ucad_test_seconds_count{span=\"x\"} 4"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[1.0, 1.0]);
    }

    // -- Log-bucketed histograms + quantile estimation (satellite coverage) -

    #[test]
    fn log_bounds_are_strictly_increasing_and_cover_the_range() {
        let bounds = log_bounds(1e-7, 100.0, 5);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!((bounds[0] - 1e-7).abs() < 1e-20);
        assert!(*bounds.last().unwrap() >= 100.0);
        // 9 decades at 5/decade: 46 bounds (47 if the last power rounds
        // down a hair and one more bound is needed to reach max).
        assert!((46..=47).contains(&bounds.len()), "{} bounds", bounds.len());
        // A decade apart means exactly per_decade buckets apart.
        let ratio = bounds[5] / bounds[0];
        assert!((ratio - 10.0).abs() < 1e-9, "decade ratio {ratio}");
    }

    #[test]
    fn log_bucketed_histogram_places_values_by_le_rule() {
        let h = Histogram::log_bucketed(1e-6, 10.0, 1);
        // Bounds: 1e-6, ~1e-5, ..., 10. A value exactly on a bound stays in
        // that bucket; epsilon above moves to the next. Use the computed
        // bound, not the literal — powf lands within an ulp of it.
        let edge = h.snapshot().bounds[1];
        h.observe(edge);
        h.observe(edge * 1.0000001);
        let s = h.snapshot();
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::log_bucketed(1e-6, 10.0, 5);
        assert_eq!(h.snapshot().quantile(0.5), None);
        assert_eq!(h.snapshot().quantile(0.999), None);
    }

    #[test]
    fn quantile_of_single_sample_interpolates_within_its_bucket() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(3.0); // bucket (2, 4]
        let s = h.snapshot();
        for q in [0.01, 0.5, 0.999] {
            let v = s.quantile(q).unwrap();
            assert!(
                (2.0..=4.0).contains(&v),
                "q={q} estimated {v}, outside the sample's bucket"
            );
        }
        // q=1 is the bucket's upper edge.
        assert_eq!(s.quantile(1.0), Some(4.0));
    }

    #[test]
    fn quantile_interpolates_linearly_within_a_bucket() {
        let h = Histogram::new(&[10.0, 20.0]);
        for _ in 0..4 {
            h.observe(5.0); // 4 samples in (0, 10]
        }
        for _ in 0..4 {
            h.observe(15.0); // 4 samples in (10, 20]
        }
        let s = h.snapshot();
        // Rank 4 of 8 sits exactly at the first bucket's upper edge.
        assert_eq!(s.quantile(0.5), Some(10.0));
        // Rank 6 of 8 is halfway through the second bucket.
        assert_eq!(s.quantile(0.75), Some(15.0));
        // Rank 2 of 8 is halfway through the first (interpolated from 0).
        assert_eq!(s.quantile(0.25), Some(5.0));
    }

    #[test]
    fn quantile_in_overflow_bucket_clamps_to_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1e9); // +Inf bucket
        let s = h.snapshot();
        assert_eq!(s.quantile(0.999), Some(2.0), "overflow must clamp");
        // Low quantiles still resolve inside finite buckets.
        assert!(s.quantile(0.25).unwrap() <= 1.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::log_bucketed(1e-6, 10.0, 5);
        let mut v = 1e-5;
        for _ in 0..1000 {
            h.observe(v);
            v *= 1.008;
        }
        let s = h.snapshot();
        let qs: Vec<f64> = [0.5, 0.9, 0.99, 0.999]
            .iter()
            .map(|&q| s.quantile(q).unwrap())
            .collect();
        assert!(
            qs.windows(2).all(|w| w[0] <= w[1]),
            "quantiles not monotone: {qs:?}"
        );
        assert!(qs[0] > 0.0);
    }

    #[test]
    fn exposition_carries_quantiles_in_text_and_json() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", &[("stage", "q")], &log_bounds(1e-6, 10.0, 5));
        for i in 1..=100 {
            h.observe(i as f64 * 1e-4);
        }
        let text = reg.render_prometheus();
        for tag in ["0.5", "0.9", "0.99", "0.999"] {
            assert!(
                text.contains(&format!(
                    "lat_seconds_quantile{{stage=\"q\",quantile=\"{tag}\"}}"
                )),
                "missing quantile {tag} in:\n{text}"
            );
        }
        let json = reg.snapshot_json();
        assert!(json.contains("\"quantiles\":{\"p50\":"), "json: {json}");
        for key in ["\"p90\":", "\"p99\":", "\"p999\":"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    // -- Prometheus text-format escaping (satellite coverage) --------------

    #[test]
    fn label_values_are_escaped_in_exposition() {
        let reg = Registry::new();
        reg.counter("m_total", &[("sql", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("m_total{sql=\"a\\\"b\\\\c\\nd\"} 1"),
            "bad escaping in: {text}"
        );
    }

    #[test]
    fn escape_label_handles_each_special_char() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }

    #[test]
    fn snapshot_json_is_wellformed_enough_to_grep() {
        let reg = Registry::new();
        reg.counter("c_total", &[]).add(7);
        reg.gauge("g", &[("k", "v")]).set(1.5);
        reg.histogram("h_seconds", &[], &[1.0]).observe(0.5);
        let json = reg.snapshot_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(
            json.contains("\"name\":\"c_total\",\"labels\":\"\",\"kind\":\"counter\",\"value\":7")
        );
        assert!(json.contains("\"kind\":\"gauge\",\"value\":1.5"));
        assert!(json.contains("\"buckets\":[1,0]"));
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("m", &[]);
        reg.gauge("m", &[]);
    }

    #[test]
    fn registered_external_handle_is_exposed() {
        let reg = Registry::new();
        let mine = Counter::new();
        mine.add(9);
        reg.register_counter("ucad_cache_hits_total", &[("cache", "score")], &mine);
        mine.inc();
        assert!(reg
            .render_prometheus()
            .contains("ucad_cache_hits_total{cache=\"score\"} 10"));
    }
}
