//! RAII timing spans: `let _s = span!("train.epoch");` measures the
//! enclosing scope and feeds the per-span latency histogram
//! `ucad_span_duration_seconds{span="train.epoch"}` in the [`crate::global`]
//! registry. When the `UCAD_OBS` event log is enabled, each completed span
//! also emits one structured JSON line.
//!
//! The macro caches the histogram handle in a per-call-site `OnceLock`, so
//! the registry mutex is taken once per call site for the lifetime of the
//! process — hot paths pay two `Instant::now()` calls and a few relaxed
//! atomic increments per span.

use crate::registry::Histogram;
use std::time::Instant;

/// Default latency buckets for span histograms: 1µs .. 10s, roughly
/// exponential. Wide enough for a single attention matmul and a whole
/// training epoch alike.
pub const DEFAULT_LATENCY_BUCKETS: [f64; 12] = [
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Live timing guard; observes its histogram on drop. Construct through
/// [`crate::span!`] (or [`SpanGuard::new`] with a hand-built histogram).
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    hist: Histogram,
}

impl SpanGuard {
    /// Starts a span feeding `hist`.
    pub fn new(name: &'static str, hist: Histogram) -> Self {
        SpanGuard {
            name,
            start: Instant::now(),
            hist,
        }
    }

    /// Span name (as passed to `span!`).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        self.hist.observe(secs);
        if crate::obs_enabled() {
            crate::event(
                "span",
                &[
                    ("name", self.name.to_string()),
                    ("us", format!("{:.1}", secs * 1e6)),
                ],
            );
        }
    }
}

/// Opens an RAII timing span: `let _guard = span!("model.forward");`.
/// The span name must be a string literal (it labels the
/// `ucad_span_duration_seconds` series and keys the per-call-site handle
/// cache).
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HIST: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        let hist = HIST.get_or_init(|| {
            $crate::global().histogram(
                "ucad_span_duration_seconds",
                &[("span", $name)],
                &$crate::DEFAULT_LATENCY_BUCKETS,
            )
        });
        $crate::SpanGuard::new($name, hist.clone())
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_its_histogram() {
        let hist = Histogram::new(&DEFAULT_LATENCY_BUCKETS);
        {
            let _g = SpanGuard::new("test.scope", hist.clone());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 0.001, "span measured {}s", snap.sum);
    }

    #[test]
    fn span_macro_feeds_the_global_registry() {
        {
            let _g = crate::span!("obs.test.macro");
        }
        {
            let _g = crate::span!("obs.test.macro");
        }
        let snaps = crate::global().snapshot();
        let series = snaps
            .iter()
            .find(|m| m.name == "ucad_span_duration_seconds" && m.labels.contains("obs.test.macro"))
            .expect("span series registered");
        assert_eq!(series.histogram.as_ref().unwrap().count, 2);
    }
}
