//! RAII timing spans: `let _s = span!("train.epoch");` measures the
//! enclosing scope and feeds the per-span latency histogram
//! `ucad_span_duration_seconds{span="train.epoch"}` in the [`crate::global`]
//! registry. When the `UCAD_OBS` event log is enabled, each completed span
//! also emits one structured JSON line; when `UCAD_PROF` is enabled, it
//! additionally folds into the hierarchical [`crate::profile`] table.
//!
//! The macro caches the histogram handle in a per-call-site `OnceLock`, so
//! the registry mutex is taken once per call site for the lifetime of the
//! process — hot paths pay two `Instant::now()` calls and a few relaxed
//! atomic increments per span.

use crate::registry::Histogram;
use std::time::Instant;

/// Legacy fixed latency buckets (1µs .. 10s, roughly exponential). Span and
/// latency histograms now use the log-bucketed [`latency_log_bounds`]
/// instead, which adds enough resolution for p99/p999 estimation; this
/// remains for callers that want a coarse 12-bucket shape.
pub const DEFAULT_LATENCY_BUCKETS: [f64; 12] = [
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// The latency-bucket layout every duration metric shares: log-spaced
/// bounds, 100ns to 100s at 5 buckets per decade (46 buckets, ~58% relative
/// width) — fine enough for meaningful p50/p90/p99/p999 interpolation from
/// a single attention matmul to a whole training epoch. Computed once per
/// process.
pub fn latency_log_bounds() -> &'static [f64] {
    static BOUNDS: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();
    BOUNDS.get_or_init(|| crate::registry::log_bounds(1e-7, 100.0, 5))
}

/// Live timing guard; observes its histogram on drop. Construct through
/// [`crate::span!`] (or [`SpanGuard::new`] with a hand-built histogram).
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    hist: Histogram,
    /// Whether this guard pushed a frame onto the profile stack (latched at
    /// construction so an env flip mid-span cannot unbalance the stack).
    profiled: bool,
}

impl SpanGuard {
    /// Starts a span feeding `hist`.
    pub fn new(name: &'static str, hist: Histogram) -> Self {
        let profiled = crate::profile::prof_enabled();
        if profiled {
            crate::profile::enter(name);
        }
        SpanGuard {
            name,
            start: Instant::now(),
            hist,
            profiled,
        }
    }

    /// Span name (as passed to `span!`).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let secs = elapsed.as_secs_f64();
        self.hist.observe(secs);
        if self.profiled {
            crate::profile::exit(elapsed.as_nanos() as u64);
        }
        if crate::obs_enabled() {
            crate::event(
                "span",
                &[
                    ("name", self.name.to_string()),
                    ("us", format!("{:.1}", secs * 1e6)),
                ],
            );
        }
    }
}

/// Opens an RAII timing span: `let _guard = span!("model.forward");`.
/// The span name must be a string literal (it labels the
/// `ucad_span_duration_seconds` series and keys the per-call-site handle
/// cache).
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HIST: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        let hist = HIST.get_or_init(|| {
            $crate::global().histogram(
                "ucad_span_duration_seconds",
                &[("span", $name)],
                $crate::latency_log_bounds(),
            )
        });
        $crate::SpanGuard::new($name, hist.clone())
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_its_histogram() {
        let hist = Histogram::new(&DEFAULT_LATENCY_BUCKETS);
        {
            let _g = SpanGuard::new("test.scope", hist.clone());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 0.001, "span measured {}s", snap.sum);
    }

    #[test]
    fn span_macro_feeds_the_global_registry() {
        {
            let _g = crate::span!("obs.test.macro");
        }
        {
            let _g = crate::span!("obs.test.macro");
        }
        let snaps = crate::global().snapshot();
        let series = snaps
            .iter()
            .find(|m| m.name == "ucad_span_duration_seconds" && m.labels.contains("obs.test.macro"))
            .expect("span series registered");
        let hist = series.histogram.as_ref().unwrap();
        assert_eq!(hist.count, 2);
        // Span histograms are log-bucketed now: quantiles must resolve.
        assert!(hist.quantile(0.99).is_some());
        assert_eq!(hist.bounds.len(), latency_log_bounds().len());
    }
}
