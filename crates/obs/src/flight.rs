//! The serve flight recorder: a bounded ring buffer of per-alert context,
//! the "why did this alert fire" black box of the serving engine.
//!
//! Every alert raised by a serving shard records one [`FlightEntry`]
//! capturing the triggering key window, the top-*p* rank and raw score of
//! the offending key, whether the scoring forward hit the score memo, the
//! shard id and the shard queue depth when the record was enqueued. The
//! buffer is bounded: old entries are dropped (and counted) rather than
//! growing without limit. Dump as JSON on demand or at engine shutdown.

use crate::registry::{escape_json, Counter, Registry};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One recorded alert, with the context needed to diagnose it after the
/// fact.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Global arrival sequence number of the triggering record.
    pub seq: u64,
    /// Session that alerted.
    pub session_id: u64,
    /// Shard that scored the record.
    pub shard: usize,
    /// Tenant the session belongs to (`None` on single-tenant engines).
    pub tenant: Option<String>,
    /// Alert reason (e.g. `IntentMismatch`, `UnknownStatement`,
    /// `Policy(...)`).
    pub reason: String,
    /// Operation index within the session, when applicable.
    pub position: Option<usize>,
    /// 0-based rank of the offending key among the model's predictions
    /// (`None` for unknown statements and policy alerts).
    pub rank: Option<usize>,
    /// Raw similarity score of the offending key.
    pub score: Option<f64>,
    /// Whether the scoring forward hit the score memo (`None` when caching
    /// is disabled or no forward ran).
    pub cache_hit: Option<bool>,
    /// Shard queue depth when the triggering record was enqueued.
    pub queue_depth: usize,
    /// Measured time the triggering record spent in its shard queue, in
    /// microseconds (`None` for alerts re-raised by supervision or crash
    /// replay — their original queue residency is gone).
    pub queue_wait_us: Option<f64>,
    /// Measured delay between this alert being raised and the drain that
    /// delivered it, in microseconds — backfilled by
    /// [`FlightRecorder::annotate_drain_delays`] at drain time (`None`
    /// until then, and forever for alerts restored from a durable
    /// snapshot).
    pub drain_delay_us: Option<f64>,
    /// The padded key window that ends at the triggering position.
    pub key_window: Vec<u32>,
}

impl FlightEntry {
    /// Renders one entry as a JSON object.
    pub fn to_json(&self) -> String {
        fn opt_usize(v: Option<usize>) -> String {
            v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
        }
        fn opt_us(v: Option<f64>) -> String {
            v.map(|x| format!("{x:.1}"))
                .unwrap_or_else(|| "null".into())
        }
        let window: Vec<String> = self.key_window.iter().map(u32::to_string).collect();
        format!(
            "{{\"seq\":{},\"session_id\":{},\"shard\":{},\"tenant\":{},\"reason\":\"{}\",\
             \"position\":{},\
             \"rank\":{},\"score\":{},\"cache_hit\":{},\"queue_depth\":{},\
             \"queue_wait_us\":{},\"drain_delay_us\":{},\"key_window\":[{}]}}",
            self.seq,
            self.session_id,
            self.shard,
            self.tenant
                .as_deref()
                .map(|t| format!("\"{}\"", escape_json(t)))
                .unwrap_or_else(|| "null".into()),
            escape_json(&self.reason),
            opt_usize(self.position),
            opt_usize(self.rank),
            self.score
                .map(|s| format!("{s}"))
                .unwrap_or_else(|| "null".into()),
            self.cache_hit
                .map(|h| h.to_string())
                .unwrap_or_else(|| "null".into()),
            self.queue_depth,
            opt_us(self.queue_wait_us),
            opt_us(self.drain_delay_us),
            window.join(",")
        )
    }
}

struct Ring {
    entries: VecDeque<FlightEntry>,
}

/// Bounded, thread-safe ring buffer of [`FlightEntry`]s.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
    recorded: Counter,
    dropped: Counter,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` entries (0 disables
    /// recording entirely).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            ring: Mutex::new(Ring {
                entries: VecDeque::new(),
            }),
            recorded: Counter::new(),
            dropped: Counter::new(),
        }
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an entry, evicting the oldest when full. No-op at capacity 0.
    pub fn record(&self, entry: FlightEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.entries.len() >= self.capacity {
            ring.entries.pop_front();
            self.dropped.inc();
        }
        ring.entries.push_back(entry);
        self.recorded.inc();
    }

    /// Entries currently resident, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .entries
            .len()
    }

    /// True when nothing has been recorded (or everything aged out).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// Entries evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Backfills [`FlightEntry::drain_delay_us`] on resident entries: the
    /// serving engine measures each alert's raised-to-drained delay at
    /// drain time, after the entry was already recorded. `delays` maps the
    /// alert's global sequence number to the delay in microseconds; seqs
    /// with no resident entry (aged out of the ring) are ignored.
    pub fn annotate_drain_delays(&self, delays: &std::collections::HashMap<u64, f64>) {
        if self.capacity == 0 || delays.is_empty() {
            return;
        }
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        for entry in ring.entries.iter_mut() {
            if entry.drain_delay_us.is_none() {
                if let Some(d) = delays.get(&entry.seq) {
                    entry.drain_delay_us = Some(*d);
                }
            }
        }
    }

    /// Renders the resident entries as a JSON array.
    pub fn dump_json(&self) -> String {
        let entries = self.entries();
        let body: Vec<String> = entries.iter().map(FlightEntry::to_json).collect();
        format!("[{}]", body.join(","))
    }

    /// Exposes the recorder's counters on `registry` as
    /// `ucad_serve_flight_entries_total` / `ucad_serve_flight_dropped_total`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("ucad_serve_flight_entries_total", &[], &self.recorded);
        registry.register_counter("ucad_serve_flight_dropped_total", &[], &self.dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> FlightEntry {
        FlightEntry {
            seq,
            session_id: 100 + seq,
            shard: 1,
            tenant: None,
            reason: "IntentMismatch".into(),
            position: Some(3),
            rank: Some(7),
            score: Some(-0.25),
            cache_hit: Some(true),
            queue_depth: 2,
            queue_wait_us: Some(12.25),
            drain_delay_us: None,
            key_window: vec![0, 0, 5, 6],
        }
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let rec = FlightRecorder::new(3);
        for seq in 0..5 {
            rec.record(entry(seq));
        }
        let e = rec.entries();
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].seq, 2, "oldest entries must age out first");
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let rec = FlightRecorder::new(0);
        rec.record(entry(1));
        assert!(rec.is_empty());
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn dump_json_renders_every_field() {
        let rec = FlightRecorder::new(4);
        rec.record(entry(9));
        let json = rec.dump_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        for needle in [
            "\"seq\":9",
            "\"session_id\":109",
            "\"shard\":1",
            "\"tenant\":null",
            "\"reason\":\"IntentMismatch\"",
            "\"rank\":7",
            "\"score\":-0.25",
            "\"cache_hit\":true",
            "\"queue_depth\":2",
            "\"queue_wait_us\":12.2",
            "\"drain_delay_us\":null",
            "\"key_window\":[0,0,5,6]",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let none = FlightEntry {
            rank: None,
            score: None,
            cache_hit: None,
            position: None,
            queue_wait_us: None,
            ..entry(1)
        };
        assert!(none.to_json().contains("\"rank\":null"));
        assert!(none.to_json().contains("\"queue_wait_us\":null"));
    }

    #[test]
    fn tenant_tag_renders_and_escapes() {
        let tagged = FlightEntry {
            tenant: Some("acme \"prod\"\\eu".into()),
            ..entry(3)
        };
        let json = tagged.to_json();
        assert!(
            json.contains("\"tenant\":\"acme \\\"prod\\\"\\\\eu\""),
            "tenant not escaped: {json}"
        );
    }

    #[test]
    fn drain_delay_backfill_targets_matching_seqs_once() {
        let rec = FlightRecorder::new(4);
        rec.record(entry(1));
        rec.record(entry(2));
        let delays = std::collections::HashMap::from([(2u64, 450.0f64), (9, 1.0)]);
        rec.annotate_drain_delays(&delays);
        let entries = rec.entries();
        assert_eq!(entries[0].drain_delay_us, None, "seq 1 was not drained");
        assert_eq!(entries[1].drain_delay_us, Some(450.0));
        // A second drain must not overwrite the recorded delay.
        rec.annotate_drain_delays(&std::collections::HashMap::from([(2u64, 9999.0f64)]));
        assert_eq!(rec.entries()[1].drain_delay_us, Some(450.0));
    }

    #[test]
    fn metrics_registration_exposes_counters() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(2);
        rec.register_metrics(&reg);
        rec.record(entry(0));
        assert!(reg
            .render_prometheus()
            .contains("ucad_serve_flight_entries_total 1"));
    }
}
