//! # ucad-obs
//!
//! Unified observability substrate for the UCAD pipeline: one lock-cheap
//! metrics registry, a lightweight span/tracing facility, and the serve
//! flight recorder — shared by preprocessing, training, the model forward
//! path and the sharded serving engine. Zero external dependencies (the
//! build environment has no route to crates.io).
//!
//! Three components:
//!
//! * [`Registry`] — atomic [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s with labels. Handles are plain `Arc`s over atomics:
//!   registration takes a mutex once, every subsequent increment is
//!   lock-free. Exposition as Prometheus text ([`Registry::render_prometheus`])
//!   or a JSON snapshot ([`Registry::snapshot_json`]) for tests and dumps.
//! * [`span!`] — RAII timing guards feeding per-span latency histograms
//!   (`ucad_span_duration_seconds{span="..."}`) in the [`global`] registry,
//!   plus an optional structured event log (one JSON line per event) that is
//!   env-gated via `UCAD_OBS` and writes to stderr or a writer installed
//!   with [`set_event_writer`].
//! * [`FlightRecorder`] — a bounded ring buffer of per-alert
//!   [`FlightEntry`]s (triggering key window, top-*p* rank/score, cache
//!   hit/miss, shard id, queue depth at enqueue), dumpable as JSON on
//!   demand or at engine shutdown: the "why did this alert fire" black box.
//!
//! Metric naming follows `ucad_<layer>_<name>{label="value"}` — see
//! DESIGN.md §"Observability" for the full scheme.

#![warn(missing_docs)]

pub mod cardinality;
pub mod flight;
pub mod profile;
pub mod registry;
pub mod span;

pub use cardinality::LabelGuard;
pub use flight::{FlightEntry, FlightRecorder};
pub use profile::prof_enabled;
pub use registry::{
    log_bounds, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricSnapshot, Registry,
    EXPOSED_QUANTILES,
};
pub use span::{latency_log_bounds, SpanGuard, DEFAULT_LATENCY_BUCKETS};

use std::io::Write;
use std::sync::{Mutex, OnceLock};

/// The process-wide registry used by `span!` and the pipeline-stage
/// instrumentation (preprocess, training, model forward). Per-engine
/// metrics (serving shards, score cache, flight recorder) live in
/// engine-owned registries instead, so concurrent engines in one process
/// never share counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// True when the `UCAD_OBS` environment variable enables the structured
/// event log (any value except empty, `0`, `false` or `off`). Metric
/// registration and span histograms are always on — only event emission is
/// gated. The variable is read once per process.
pub fn obs_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("UCAD_OBS") {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off"),
        Err(_) => false,
    })
}

fn event_sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Redirects the structured event log away from stderr (tests capture
/// events this way). Pass-through of everything emitted after the call.
pub fn set_event_writer(writer: Box<dyn Write + Send>) {
    *event_sink().lock().expect("event sink poisoned") = Some(writer);
}

/// Writes one pre-formatted JSON line to the event sink (stderr by
/// default). Unconditional — callers gate on [`obs_enabled`] so that
/// explicit dumps (e.g. the flight recorder at shutdown) can bypass the
/// gate when asked for directly.
pub fn write_event_line(line: &str) {
    let mut sink = event_sink().lock().expect("event sink poisoned");
    match sink.as_mut() {
        Some(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        None => eprintln!("{line}"),
    }
}

/// Emits one structured event as a JSON line (when [`obs_enabled`]):
/// `{"event":"<kind>","<field>":<value>,...}`. Values are JSON-escaped
/// strings; numeric fields should be pre-formatted by the caller.
pub fn event(kind: &str, fields: &[(&str, String)]) {
    if !obs_enabled() {
        return;
    }
    let mut line = String::with_capacity(64);
    line.push_str("{\"event\":\"");
    line.push_str(&registry::escape_json(kind));
    line.push('"');
    for (k, v) in fields {
        line.push_str(",\"");
        line.push_str(&registry::escape_json(k));
        line.push_str("\":\"");
        line.push_str(&registry::escape_json(v));
        line.push('"');
    }
    line.push('}');
    write_event_line(&line);
}

/// Dumps the hierarchical span profile to stderr — the `UCAD_PROF=1`
/// shutdown hook benches and examples call last thing before exit. No-op
/// unless profiling is enabled and at least one span completed.
pub fn dump_profile_if_enabled() {
    if !prof_enabled() || profile::stats().is_empty() {
        return;
    }
    eprint!("{}", profile::render_report());
    eprintln!("# collapsed stacks (self-time µs):");
    eprint!("{}", profile::render_collapsed());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }

    #[test]
    fn event_formatting_escapes_fields() {
        // Events are gated on UCAD_OBS; exercise the formatting path by
        // checking escape_json directly plus the no-panic path of event().
        event("test", &[("k", "v\"w".to_string())]);
        assert_eq!(registry::escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
