//! `UCAD_PROF=1` hierarchical span profiling.
//!
//! When enabled, every [`crate::SpanGuard`] additionally maintains a
//! thread-local span stack and, on drop, folds its duration into a global
//! profile table keyed by the full span *path* (`train.epoch;nn.backward`).
//! Each path accumulates call count, total (inclusive) time and self time
//! (total minus the time spent in child spans), so the dump answers both
//! "where does wall time go" (total) and "which stage is actually hot"
//! (self).
//!
//! The profile is dumped explicitly — there is no reliable atexit hook for
//! library code — via [`render_report`] / [`render_collapsed`] or the
//! convenience [`crate::dump_profile_if_enabled`], which benches and
//! examples call at shutdown. [`render_collapsed`] emits standard
//! collapsed-stack lines (`a;b;c <self-µs>`) consumable by any flamegraph
//! tool.
//!
//! Overhead when disabled: one relaxed atomic load per span (the same
//! read-once env gate the event log uses), nothing else.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// True when the `UCAD_PROF` environment variable enables span profiling
/// (any value except empty, `0`, `false` or `off`; read once per process),
/// or when a test forced it on via [`force_enable`].
pub fn prof_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    FORCED.load(Ordering::Relaxed)
        || *ENABLED.get_or_init(|| match std::env::var("UCAD_PROF") {
            Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off"),
            Err(_) => false,
        })
}

static FORCED: AtomicBool = AtomicBool::new(false);

/// Forces profiling on for the rest of the process, bypassing the
/// read-once `UCAD_PROF` gate — tests use this because the env gate may
/// already have latched off by the time they run.
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

struct Frame {
    name: &'static str,
    /// Nanoseconds spent in already-completed child spans.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// One path's accumulated statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Completed spans at this path.
    pub calls: u64,
    /// Inclusive time, nanoseconds.
    pub total_ns: u64,
    /// Exclusive time (total minus child spans), nanoseconds.
    pub self_ns: u64,
}

fn table() -> &'static Mutex<BTreeMap<String, PathStat>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, PathStat>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Pushes a span onto the calling thread's profile stack. Callers must
/// pair every `enter` with exactly one [`exit`] on the same thread —
/// [`crate::SpanGuard`] guarantees this via RAII.
pub(crate) fn enter(name: &'static str) {
    STACK.with(|s| s.borrow_mut().push(Frame { name, child_ns: 0 }));
}

/// Pops the current span, crediting `elapsed_ns` to its path (and to the
/// parent frame's child time).
pub(crate) fn exit(elapsed_ns: u64) {
    let path = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let frame = stack.pop().expect("span exit without matching enter");
        let self_ns = elapsed_ns.saturating_sub(frame.child_ns);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
        }
        let mut path = String::with_capacity(32);
        for f in stack.iter() {
            path.push_str(f.name);
            path.push(';');
        }
        path.push_str(frame.name);
        (path, self_ns)
    });
    let (path, self_ns) = path;
    let mut tbl = table().lock().expect("profile table poisoned");
    let stat = tbl.entry(path).or_default();
    stat.calls += 1;
    stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
    stat.self_ns = stat.self_ns.saturating_add(self_ns);
}

/// Copies out the accumulated profile, path-sorted.
pub fn stats() -> Vec<(String, PathStat)> {
    table()
        .lock()
        .expect("profile table poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clears the accumulated profile (tests).
pub fn reset() {
    table().lock().expect("profile table poisoned").clear();
}

/// Renders collapsed-stack lines — `a;b;c <self-time-µs>` — ready for a
/// flamegraph tool. Paths with zero self time after rounding still emit a
/// line (value 0) so the hierarchy stays complete.
pub fn render_collapsed() -> String {
    let mut out = String::new();
    for (path, stat) in stats() {
        out.push_str(&format!("{path} {}\n", stat.self_ns / 1_000));
    }
    out
}

/// Renders a human-readable self/total table, hottest total time first.
pub fn render_report() -> String {
    let mut rows = stats();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
    let mut out = String::from(
        "# UCAD span profile (total = inclusive, self = exclusive)\n\
         #     total-ms      self-ms        calls  path\n",
    );
    for (path, stat) in rows {
        out.push_str(&format!(
            "{:>14.3} {:>12.3} {:>12}  {path}\n",
            stat.total_ns as f64 / 1e6,
            stat.self_ns as f64 / 1e6,
            stat.calls,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, SpanGuard};

    fn hist() -> Histogram {
        Histogram::log_bucketed(1e-7, 10.0, 5)
    }

    #[test]
    fn nested_spans_build_paths_and_split_self_time() {
        force_enable();
        {
            let _outer = SpanGuard::new("prof.test.outer", hist());
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = SpanGuard::new("prof.test.inner", hist());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let stats = stats();
        let outer = stats
            .iter()
            .find(|(p, _)| p == "prof.test.outer")
            .expect("outer path recorded");
        let inner = stats
            .iter()
            .find(|(p, _)| p == "prof.test.outer;prof.test.inner")
            .expect("inner path nests under outer");
        assert!(inner.1.calls >= 1);
        assert!(outer.1.total_ns >= inner.1.total_ns);
        assert!(
            outer.1.self_ns <= outer.1.total_ns - inner.1.total_ns + 1_000_000,
            "outer self time must exclude the inner span"
        );
        let collapsed = render_collapsed();
        assert!(collapsed.contains("prof.test.outer;prof.test.inner "));
        let report = render_report();
        assert!(report.contains("path"));
        assert!(report.contains("prof.test.outer"));
    }
}
