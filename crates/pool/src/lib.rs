//! # ucad-pool
//!
//! A small scoped thread pool for data-parallel kernels, vendored because
//! the build environment has no route to crates.io. One global pool sized
//! from `UCAD_THREADS` serves the whole process; kernels split work across
//! *independent* output ranges with [`Pool::parallel_for`], so every f32
//! result is bit-identical to the sequential loop regardless of thread
//! count — parallelism changes only *who* computes each output row, never
//! the per-element summation order.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism**: `parallel_for(len, _, f)` calls `f(start, end)` over
//!    a disjoint cover of `0..len`. `f` must not share mutable state across
//!    ranges; under that contract the result cannot depend on scheduling.
//! 2. **Sequential degeneracy**: with one thread (the default when
//!    `UCAD_THREADS` is unset on a single-core host), when the range is
//!    below the chunk grain, when the pool is already running a job
//!    (nested or concurrent dispatch), or when called from inside a pool
//!    worker, the closure runs inline as `f(0, len)` — one branch of
//!    overhead, no locks.
//! 3. **Caller participation**: the dispatching thread grabs chunks from
//!    the same atomic cursor as the workers, so a pool is never slower
//!    than sequential by more than the cost of a handful of atomic ops.
//!
//! The pool runs one job at a time (claimed by a CAS on a busy flag);
//! concurrent dispatchers fall back to inline execution rather than queue.
//! Worker panics are caught per-chunk and re-thrown on the dispatching
//! thread once the job completes, so a poisoned chunk cannot deadlock the
//! completion wait.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Fat pointer to the job closure, lifetime-erased so it can sit in the
/// shared slot. Sound because [`Pool::parallel_for`] blocks until every
/// grabbed chunk has finished executing, so the pointee strictly outlives
/// every dereference.
#[derive(Clone, Copy)]
struct FnPtr(*const (dyn Fn(usize, usize) + Sync));
// SAFETY: the pointee is `Sync` (shared `&` calls from many threads are
// fine) and the pointer never outlives the `parallel_for` frame it points
// into (completion is awaited before return).
unsafe impl Send for FnPtr {}
unsafe impl Sync for FnPtr {}

impl FnPtr {
    /// Erases the borrow lifetime of `f`.
    ///
    /// # Safety
    /// The caller must not let the pointer escape the frame that owns `f`
    /// — `parallel_for` upholds this by awaiting job completion before
    /// returning.
    unsafe fn erase<'a>(f: &'a (dyn Fn(usize, usize) + Sync + 'a)) -> FnPtr {
        FnPtr(std::mem::transmute::<
            *const (dyn Fn(usize, usize) + Sync + 'a),
            *const (dyn Fn(usize, usize) + Sync + 'static),
        >(f))
    }
}

/// One dispatched job: a closure over `0..len`, carved into `chunk`-sized
/// ranges handed out by the `next` cursor. `done` counts finished elements;
/// the job is complete when it reaches `len`. Per-job `Arc`s (rather than
/// pool-level atomics) make a stale worker that wakes up late harmless: it
/// bumps cursors nobody reads any more.
#[derive(Clone)]
struct Job {
    func: FnPtr,
    len: usize,
    chunk: usize,
    next: Arc<AtomicUsize>,
    done: Arc<AtomicUsize>,
    panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>,
}

struct Slot {
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A fixed-size scoped thread pool. See the crate docs for the execution
/// model; most callers want [`current`] rather than constructing one.
pub struct Pool {
    threads: usize,
    busy: AtomicBool,
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

thread_local! {
    /// Set while this thread is executing pool chunks, so a kernel called
    /// from inside a job degrades to inline execution instead of
    /// re-dispatching (the busy flag would catch it too, but this avoids
    /// even the CAS).
    static IN_WORKER: RefCell<bool> = const { RefCell::new(false) };
    /// Per-thread pool override installed by [`with_pool`]; tests use it to
    /// exercise kernels at several thread counts inside one process.
    static OVERRIDE: RefCell<Option<Arc<Pool>>> = const { RefCell::new(None) };
}

impl Pool {
    /// Creates a pool that computes with `threads` threads in total: the
    /// dispatching caller plus `threads - 1` background workers.
    /// `Pool::new(1)` spawns nothing and always runs inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ucad-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            threads,
            busy: AtomicBool::new(false),
            shared,
            workers,
        }
    }

    /// Total number of computing threads (callers + workers).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(start, end)` over a disjoint cover of `0..len`, possibly in
    /// parallel. Ranges never overlap and every index is covered exactly
    /// once, so as long as chunks touch disjoint output ranges the result
    /// is independent of scheduling. `min_chunk` bounds the smallest range
    /// a thread will be handed; ranges at or below it run inline.
    ///
    /// Falls back to a single inline `f(0, len)` call when the pool has one
    /// thread, the range is a single chunk, the caller is itself a pool
    /// worker, or another job is already running.
    ///
    /// # Panics
    /// Re-throws the first panic raised inside `f` after all chunks finish.
    pub fn parallel_for(&self, len: usize, min_chunk: usize, f: impl Fn(usize, usize) + Sync) {
        if len == 0 {
            return;
        }
        // Aim for a few chunks per thread for load balance, floored by the
        // caller's grain.
        let chunk = min_chunk
            .max(len.div_ceil(self.threads.saturating_mul(4)))
            .max(1);
        let inline = self.threads == 1
            || chunk >= len
            || IN_WORKER.with(|w| *w.borrow())
            || self
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err();
        if inline {
            f(0, len);
            return;
        }
        // Busy flag is held from here; release it on every exit path.
        let job = Job {
            func: unsafe { FnPtr::erase(&f) },
            len,
            chunk,
            next: Arc::new(AtomicUsize::new(0)),
            done: Arc::new(AtomicUsize::new(0)),
            panic: Arc::new(Mutex::new(None)),
        };
        {
            let mut slot = self.shared.slot.lock().expect("pool slot poisoned");
            slot.epoch += 1;
            slot.job = Some(job.clone());
        }
        self.shared.work_cv.notify_all();

        // Participate: grab chunks alongside the workers.
        run_chunks(&self.shared, &job);

        // Await full completion before the closure (and its captures) can
        // drop. Workers notify under the slot lock, so the standard
        // check-then-wait loop cannot miss a wakeup.
        {
            let mut slot = self.shared.slot.lock().expect("pool slot poisoned");
            while job.done.load(Ordering::Acquire) < len {
                slot = self.shared.done_cv.wait(slot).expect("pool slot poisoned");
            }
            slot.job = None;
        }
        self.busy.store(false, Ordering::Release);

        let payload = job.panic.lock().expect("pool panic slot poisoned").take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool slot poisoned");
            slot.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_WORKER.with(|w| *w.borrow_mut() = true);
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool slot poisoned");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    if let Some(job) = slot.job.clone() {
                        break job;
                    }
                }
                slot = shared.work_cv.wait(slot).expect("pool slot poisoned");
            }
        };
        run_chunks(shared, &job);
    }
}

/// Grabs chunks off `job.next` until the range is exhausted. Panics inside
/// the closure are caught per-chunk (first payload kept) so `done` always
/// reaches `len` and the dispatcher cannot hang; remaining chunks still run,
/// which is harmless because chunks are independent by contract.
fn run_chunks(shared: &Shared, job: &Job) {
    // SAFETY: see FnPtr — the dispatcher blocks until `done == len`, and we
    // only dereference while chunks remain unfinished.
    let f = unsafe { &*job.func.0 };
    loop {
        let start = job.next.fetch_add(job.chunk, Ordering::Relaxed);
        if start >= job.len {
            return;
        }
        let end = (start + job.chunk).min(job.len);
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(start, end))) {
            let mut panic_slot = job.panic.lock().expect("pool panic slot poisoned");
            if panic_slot.is_none() {
                *panic_slot = Some(p);
            }
        }
        let finished = job.done.fetch_add(end - start, Ordering::AcqRel) + (end - start);
        if finished >= job.len {
            // Notify under the slot lock so the dispatcher's
            // check-then-wait cannot race with this wakeup.
            let _guard = shared.slot.lock().expect("pool slot poisoned");
            shared.done_cv.notify_all();
            return;
        }
    }
}

/// Worker-count policy: `UCAD_THREADS` if set (clamped to `1..=64`),
/// otherwise the host's available parallelism capped at 8.
pub fn default_threads() -> usize {
    match std::env::var("UCAD_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1)
            .min(64),
        Err(_) => thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8),
    }
}

/// The process-wide pool, created on first use with [`default_threads`]
/// workers. Publishes its size as the `ucad_pool_threads` gauge in the
/// global metrics registry (a gauge, not a counter, so the golden counter
/// wall stays thread-count independent).
pub fn global() -> &'static Arc<Pool> {
    static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = default_threads();
        let registry = ucad_obs::global();
        registry.describe(
            "ucad_pool_threads",
            ucad_obs::MetricKind::Gauge,
            "Number of compute threads in the global kernel pool",
        );
        registry.gauge("ucad_pool_threads", &[]).set(threads as f64);
        Arc::new(Pool::new(threads))
    })
}

/// The pool the current thread should dispatch kernels on: the innermost
/// [`with_pool`] override if one is installed, otherwise [`global`].
pub fn current() -> Arc<Pool> {
    OVERRIDE
        .with(|o| o.borrow().clone())
        .unwrap_or_else(|| Arc::clone(global()))
}

/// Runs `f` with [`current`] resolving to `pool` on this thread. Nests and
/// unwinds safely (the previous override is restored on panic), so property
/// tests can exercise one kernel at several thread counts in-process.
pub fn with_pool<R>(pool: Arc<Pool>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Pool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| *o.borrow_mut() = self.0.take());
        }
    }
    let prev = OVERRIDE.with(|o| o.borrow_mut().replace(pool));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(pool: &Pool, len: usize, min_chunk: usize) -> Vec<usize> {
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(len, min_chunk, |start, end| {
            for h in &hits[start..end] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        hits.into_iter().map(AtomicUsize::into_inner).collect()
    }

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            for len in [0, 1, 7, 64, 1000] {
                for min_chunk in [1, 8, 2000] {
                    let hits = cover(&pool, len, min_chunk);
                    assert!(
                        hits.iter().all(|&h| h == 1),
                        "threads={threads} len={len} min_chunk={min_chunk}: {hits:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        pool.parallel_for(16, 1, |start, end| {
            // Nested call on the same pool: must degrade to inline.
            pool.parallel_for(4, 1, |s, e| {
                total.fetch_add((e - s) * (end - start), Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 16);
    }

    #[test]
    fn panic_in_chunk_propagates_to_dispatcher() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(64, 1, |start, _end| {
                if start == 0 {
                    panic!("chunk zero exploded");
                }
            });
        }));
        let err = result.expect_err("panic should propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk zero exploded");
        // Pool must remain usable after a propagated panic.
        assert!(cover(&pool, 32, 1).iter().all(|&h| h == 1));
    }

    #[test]
    fn with_pool_overrides_current_and_restores() {
        let four = Arc::new(Pool::new(4));
        let two = Arc::new(Pool::new(2));
        with_pool(Arc::clone(&four), || {
            assert_eq!(current().threads(), 4);
            with_pool(Arc::clone(&two), || assert_eq!(current().threads(), 2));
            assert_eq!(current().threads(), 4);
        });
        let restored =
            std::panic::catch_unwind(AssertUnwindSafe(|| with_pool(two, || panic!("boom"))));
        assert!(restored.is_err());
        // Override must not leak past an unwound with_pool.
        assert_eq!(current().threads(), global().threads());
    }

    #[test]
    fn single_thread_pool_is_sequential_and_ordered() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.parallel_for(10, 3, |start, end| {
            order.lock().unwrap().push((start, end));
        });
        // One-thread pools run the whole range as a single inline call.
        assert_eq!(*order.lock().unwrap(), vec![(0, 10)]);
    }
}
