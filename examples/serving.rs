//! Serving quickstart: deploy a trained UCAD system behind the sharded,
//! memoizing online engine and stream interleaved sessions through it.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucad::prelude::*;
use ucad_dbsim::LogRecord;
use ucad_trace::{generate_raw_log, AnomalySynthesizer, ScenarioSpec, Session, SessionGenerator};

fn records_of(session: &Session) -> Vec<LogRecord> {
    session
        .ops
        .iter()
        .map(|op| LogRecord {
            timestamp: op.timestamp,
            user: session.user.clone(),
            client_ip: session.client_ip.clone(),
            session_id: session.id,
            sql: op.sql.clone(),
            table: op.table.clone(),
            op: op.kind,
            rows: 0,
        })
        .collect()
}

fn main() {
    // 1. Offline: train on a clean commenting-application audit log.
    let spec = ScenarioSpec::commenting();
    let raw = generate_raw_log(&spec, 400, 0.0, 42);
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        epochs: 14,
        ..cfg.model
    };
    let (system, _) = Ucad::train(&raw.sessions, cfg);

    // 2. Online: spin up the sharded engine — 4 worker shards, Block-batched
    //    scoring, a 512-window score memo. Alert output is byte-identical
    //    for any shard count.
    let serve_cfg = ServeConfig {
        shards: 4,
        cache_capacity: 512,
        mode: DetectionMode::Block,
        ..ServeConfig::default()
    };
    let mut engine = ShardedOnlineUcad::new(system, serve_cfg);

    // 3. Traffic: eight concurrent sessions, one of them carrying a
    //    credential-stealing anomaly, records interleaved round-robin as a
    //    live audit stream would arrive.
    let mut gen = SessionGenerator::new(spec.clone());
    let synth = AnomalySynthesizer::new(&spec);
    let mut rng = StdRng::seed_from_u64(7);
    let mut sessions: Vec<Session> = (0..7)
        .map(|_| gen.normal_session(&mut rng).session)
        .collect();
    let victim = gen.normal_session(&mut rng).session;
    sessions.push(
        synth
            .credential_stealing(&victim, &mut gen, &mut rng)
            .session,
    );
    for (i, s) in sessions.iter_mut().enumerate() {
        s.id = 100 + i as u64;
    }

    let queues: Vec<Vec<LogRecord>> = sessions.iter().map(records_of).collect();
    let longest = queues.iter().map(Vec::len).max().unwrap_or(0);
    let mut submitted = 0usize;
    for i in 0..longest {
        for q in &queues {
            if let Some(r) = q.get(i) {
                engine.submit(r);
                submitted += 1;
            }
        }
    }
    for s in &sessions {
        engine.close_session(s.id);
    }

    // 4. Drain: alerts come back ordered by the arrival position of the
    //    record that triggered them.
    let alerts = engine.drain_alerts();
    println!(
        "submitted {submitted} records across {} sessions",
        sessions.len()
    );
    for a in &alerts {
        println!(
            "[ALARM] session {} (user {}): {:?} at operation {:?}",
            a.session_id, a.user, a.reason, a.position
        );
    }

    let stats = engine.stats();
    println!(
        "shard load: {:?} records, cache hit-rate {}",
        stats.records_per_shard,
        stats
            .cache
            .map(|c| format!(
                "{:.1}% ({} hits / {} misses)",
                100.0 * c.hit_rate(),
                c.hits,
                c.misses
            ))
            .unwrap_or_else(|| "n/a".into())
    );

    // 5. Observability: the whole pipeline self-reports. The global registry
    //    carries preprocess/train/model metrics; the engine registry carries
    //    serve/cache metrics; the flight recorder holds per-alert context.
    //    Set UCAD_OBS=1 to additionally stream structured JSON events.
    println!("\n# --- global metrics (preprocess / train / model) ---");
    print!("{}", ucad_obs::global().render_prometheus());
    println!("\n# --- engine metrics (serve / cache / flight) ---");
    print!("{}", engine.render_metrics());
    println!("\n# --- flight recorder (per-alert context) ---");
    println!("{}", engine.dump_flight_json());

    // 6. Shutdown hands back the system plus the sessions verified normal,
    //    ready for the §5.2 concept-drift fine-tuning loop.
    let report = engine.shutdown();
    println!(
        "shutdown: {} verified-normal sessions buffered for fine-tuning",
        report.verified_normals.len()
    );
}
