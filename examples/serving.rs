//! Serving quickstart: deploy a trained UCAD system behind the sharded,
//! memoizing online engine and stream interleaved sessions through it.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! The traffic driver is written against the transport-agnostic
//! [`Admission`] trait, so the *same* code drives the engine in-process or
//! over TCP through a `ucad-net` daemon. Environment knobs:
//!
//! * `UCAD_SERVE_NET=1` serves through a real TCP daemon (spawned in this
//!   process on a loopback port) instead of calling the engine directly —
//!   the printed alerts, accounting and `ucad_serve_*` metrics are
//!   identical either way.
//! * `UCAD_SERVE_POLICY=block|shed|degrade` selects the [`OverloadPolicy`]
//!   (default `block`).
//! * `UCAD_FAULTS="panic=40@1;stall_us=200"` arms deterministic fault
//!   injection (worker panics, scoring stalls, forced saturation — see
//!   `ucad-fault`); shard supervision heals every injected crash and the
//!   run still drains, reconciles and exits cleanly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucad::prelude::*;
use ucad_baselines::BaselineDetector;
use ucad_dbsim::LogRecord;
use ucad_net::{NetClient, NetDaemon, NetServeConfig};
use ucad_trace::{generate_raw_log, AnomalySynthesizer, ScenarioSpec, Session, SessionGenerator};

fn records_of(session: &Session) -> Vec<LogRecord> {
    session
        .ops
        .iter()
        .map(|op| LogRecord {
            timestamp: op.timestamp,
            user: session.user.clone(),
            client_ip: session.client_ip.clone(),
            session_id: session.id,
            sql: op.sql.clone(),
            table: op.table.clone(),
            op: op.kind,
            rows: 0,
        })
        .collect()
}

/// Steps 3-5 of the quickstart, written against [`Admission`] alone: stream
/// the interleaved traffic, drain the ordered alerts, reconcile the
/// overload accounting, and dump the observability surfaces. `engine` may
/// be the in-process [`ShardedOnlineUcad`] or a [`NetClient`] speaking to a
/// daemon — the output is the same.
fn drive<A: Admission>(engine: &mut A, sessions: &[Session]) -> Result<(), UcadError> {
    let queues: Vec<Vec<LogRecord>> = sessions.iter().map(records_of).collect();
    let longest = queues.iter().map(Vec::len).max().unwrap_or(0);
    let mut submitted = 0usize;
    let (mut accepted, mut shed, mut degraded) = (0usize, 0usize, 0usize);
    for i in 0..longest {
        for q in &queues {
            if let Some(r) = q.get(i) {
                match engine.try_submit(r)? {
                    SubmitOutcome::Accepted => accepted += 1,
                    SubmitOutcome::Shed => shed += 1,
                    SubmitOutcome::Degraded => degraded += 1,
                }
                submitted += 1;
            }
        }
    }
    for s in sessions {
        engine.close_session(s.id)?;
    }

    // Drain: alerts come back ordered by the arrival position of the
    // record that triggered them.
    let alerts = engine.drain_alerts()?;
    println!(
        "submitted {submitted} records across {} sessions",
        sessions.len()
    );
    for a in &alerts {
        println!(
            "[ALARM] session {} (user {}): {:?} at operation {:?}",
            a.session_id, a.user, a.reason, a.position
        );
    }

    let stats = engine.stats()?;
    println!(
        "shard load: {:?} records, cache hit-rate {}",
        stats.records_per_shard,
        stats
            .cache
            .map(|c| format!(
                "{:.1}% ({} hits / {} misses)",
                100.0 * c.hit_rate(),
                c.hits,
                c.misses
            ))
            .unwrap_or_else(|| "n/a".into())
    );
    // Fault-tolerance reconciliation: every submission is accounted for
    // exactly once, even under an armed UCAD_FAULTS plan.
    println!(
        "overload: {accepted} accepted, {shed} shed, {degraded} degraded \
         (engine counters: shed {}, degraded {})",
        stats.records_shed, stats.records_degraded
    );
    println!("worker restarts: {}", stats.worker_restarts);
    assert_eq!(
        accepted + shed + degraded,
        submitted,
        "submission outcomes do not partition the stream"
    );
    assert_eq!(stats.records_shed, shed as u64, "shed counter mismatch");
    assert_eq!(
        stats.records_degraded, degraded as u64,
        "degraded counter mismatch"
    );
    assert_eq!(
        stats.records(),
        accepted as u64,
        "accepted records must all reach a shard worker"
    );

    // Observability: the whole pipeline self-reports. The global registry
    // carries preprocess/train/model metrics; the engine registry carries
    // serve/cache metrics; the flight recorder holds per-alert context.
    // Set UCAD_OBS=1 to additionally stream structured JSON events.
    println!("\n# --- global metrics (preprocess / train / model) ---");
    print!("{}", ucad_obs::global().render_prometheus());
    println!("\n# --- engine metrics (serve / cache / flight) ---");
    print!("{}", engine.render_metrics()?);
    println!("\n# --- flight recorder (per-alert context) ---");
    println!("{}", engine.dump_flight_json()?);
    Ok(())
}

fn main() {
    // 1. Offline: train on a clean commenting-application audit log.
    let spec = ScenarioSpec::commenting();
    let raw = generate_raw_log(&spec, 400, 0.0, 42);
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        epochs: 14,
        ..cfg.model
    };
    let (system, _) = Ucad::train(&raw.sessions, cfg);

    // 2. Online: spin up the sharded engine — 4 worker shards, Block-batched
    //    scoring, a 512-window score memo. Alert output is byte-identical
    //    for any shard count. UCAD_SERVE_POLICY picks the overload policy;
    //    Degrade additionally needs a fitted n-gram fallback.
    let policy = match std::env::var("UCAD_SERVE_POLICY").as_deref() {
        Ok("shed") => OverloadPolicy::ShedNewest,
        Ok("degrade") => OverloadPolicy::Degrade,
        Ok("block") | Err(_) => OverloadPolicy::Block,
        Ok(other) => panic!("UCAD_SERVE_POLICY must be block|shed|degrade, got `{other}`"),
    };
    let fallback = matches!(policy, OverloadPolicy::Degrade).then(|| {
        let train: Vec<Vec<u32>> = raw
            .sessions
            .iter()
            .take(60)
            .map(|s| system.preprocessor.vocab.tokenize_session(s))
            .collect();
        let mut lm = NgramLm::new(3, 4);
        lm.fit(&train, system.model.cfg.vocab_size);
        lm
    });
    let serve_cfg = ServeConfig {
        shards: 4,
        cache_capacity: 512,
        mode: DetectionMode::Block,
        overload: policy,
        ..ServeConfig::default()
    };
    println!("overload policy: {policy:?}");

    // 3. Traffic: eight concurrent sessions, one of them carrying a
    //    credential-stealing anomaly, records interleaved round-robin as a
    //    live audit stream would arrive.
    let mut gen = SessionGenerator::new(spec.clone());
    let synth = AnomalySynthesizer::new(&spec);
    let mut rng = StdRng::seed_from_u64(7);
    let mut sessions: Vec<Session> = (0..7)
        .map(|_| gen.normal_session(&mut rng).session)
        .collect();
    let victim = gen.normal_session(&mut rng).session;
    sessions.push(
        synth
            .credential_stealing(&victim, &mut gen, &mut rng)
            .session,
    );
    for (i, s) in sessions.iter_mut().enumerate() {
        s.id = 100 + i as u64;
    }

    // 4. Serve — same driver, either transport.
    let report = if std::env::var("UCAD_SERVE_NET").as_deref() == Ok("1") {
        let net_cfg = NetServeConfig::builder()
            .addr("127.0.0.1:0")
            .serve(serve_cfg)
            .build()
            .expect("valid net serve configuration");
        let daemon =
            NetDaemon::bind_full(system, net_cfg, None, fallback).expect("bind loopback daemon");
        let (addr, _stop, join) = daemon.spawn();
        println!("serving over TCP via ucad-net daemon at {addr}");
        let mut client = NetClient::connect(addr.to_string()).expect("connect to daemon");
        drive(&mut client, &sessions).expect("serve over TCP");
        client.shutdown_daemon().expect("daemon shutdown");
        join.join()
            .expect("daemon thread")
            .expect("daemon shutdown report")
    } else {
        let mut engine = ShardedOnlineUcad::try_new_full(system, serve_cfg, None, fallback)
            .expect("valid serve configuration");
        drive(&mut engine, &sessions).expect("serve in-process");
        engine.shutdown()
    };

    // 5. Shutdown hands back the system plus the sessions verified normal,
    //    ready for the §5.2 concept-drift fine-tuning loop.
    println!(
        "shutdown: {} verified-normal sessions buffered for fine-tuning",
        report.verified_normals.len()
    );

    // With UCAD_PROF=1, dump the hierarchical self/total-time span profile
    // (collapsed-stack format) gathered across the whole run.
    ucad_obs::dump_profile_if_enabled();
}
