//! Multi-tenant serving quickstart: four tenants across three application
//! archetypes multiplexed behind one shard pool, with a resident-model
//! budget smaller than the fleet so the LRU churns, per-tenant drift
//! monitors labelled by tenant, and a mid-stream hot swap that touches
//! exactly one tenant.
//!
//! ```sh
//! UCAD_TENANT_BUDGET=2 cargo run --release --example multi_tenant
//! ```
//!
//! Knobs: `UCAD_TENANT_BUDGET` (resident models, default 2),
//! `UCAD_THREADS` (shard workers, default 3),
//! `UCAD_TENANT_SESSIONS` (sessions per tenant, default 10).

use std::sync::Arc;
use ucad::{ServeConfig, Ucad, UcadConfig};
use ucad_dbsim::{fleet_events, training_records, FleetEvent, TenantArchetype, TenantSpec};
use ucad_life::{DriftBaseline, DriftConfig, DriftMonitor};
use ucad_model::TransDasConfig;
use ucad_tenant::{TenantRegistry, TenantShardPool};
use ucad_trace::Session;

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn train(archetype: TenantArchetype) -> (Ucad, Vec<Vec<u32>>) {
    let records = training_records(archetype, 60, 0xF1E7 + archetype as u64);
    let sessions = Session::from_log_records(&records);
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        hidden: 10,
        heads: 2,
        blocks: 2,
        window: 16,
        epochs: 10,
        ..cfg.model
    };
    let (system, report) = Ucad::train(&sessions, cfg);
    println!(
        "trained {:>10}: vocab {}, {} sessions kept",
        archetype.name(),
        system.model.cfg.vocab_size,
        report.purified_sessions
    );
    let corpus = sessions
        .iter()
        .map(|s| system.preprocessor.transform(s))
        .collect();
    (system, corpus)
}

fn main() {
    let budget = knob("UCAD_TENANT_BUDGET", 2);
    let shards = knob("UCAD_THREADS", 3);
    let sessions_per_tenant = knob("UCAD_TENANT_SESSIONS", 10);

    // One trained system per archetype; two tenants share the commenting
    // archetype but have fully independent traffic and serving state.
    let specs = [
        TenantSpec {
            tenant: 1,
            archetype: TenantArchetype::Commenting,
            seed: 11,
        },
        TenantSpec {
            tenant: 2,
            archetype: TenantArchetype::LocationService,
            seed: 12,
        },
        TenantSpec {
            tenant: 3,
            archetype: TenantArchetype::Syslog,
            seed: 13,
        },
        TenantSpec {
            tenant: 4,
            archetype: TenantArchetype::Commenting,
            seed: 14,
        },
    ];
    let trained: Vec<(TenantArchetype, Ucad, Vec<Vec<u32>>)> = TenantArchetype::all()
        .into_iter()
        .map(|a| {
            let (system, corpus) = train(a);
            (a, system, corpus)
        })
        .collect();
    let of = |a: TenantArchetype| trained.iter().find(|(t, _, _)| *t == a).unwrap();

    // Durable tenant catalog with an LRU resident budget below the fleet
    // size: activations of cold tenants reload checkpoints bit-exactly.
    let dir = std::env::temp_dir().join(format!("ucad-multi-tenant-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut registry = TenantRegistry::open(&dir, budget, 256).expect("open registry");
    for spec in &specs {
        let name = format!("{}-{}", spec.archetype.name(), spec.tenant);
        registry
            .register(spec.tenant, &name, &of(spec.archetype).1)
            .expect("register tenant");
    }
    println!(
        "registry: {} tenants, resident budget {budget}",
        registry.known_tenants().len()
    );

    let cfg = ServeConfig {
        shards,
        cache_capacity: 256,
        ..ServeConfig::default()
    };
    let mut pool = TenantShardPool::new(registry, cfg).expect("pool");

    // Per-tenant drift monitors: same metric names, distinct `tenant`
    // label — one tenant's drift alarm names its tenant in /metrics.
    for spec in &specs {
        let (_, system, corpus) = of(spec.archetype);
        let drift_cfg = DriftConfig {
            window: 64,
            ewma_factor: 4.0,
            ewma_margin: 0.1,
            ..DriftConfig::default()
        };
        let baseline = DriftBaseline::from_keyed_sessions(system, corpus, drift_cfg.rank_buckets)
            .expect("baseline");
        let monitor = Arc::new(DriftMonitor::new(drift_cfg, baseline).expect("monitor"));
        let name = format!("{}-{}", spec.archetype.name(), spec.tenant);
        monitor.register_metrics(pool.metrics(), &[("tenant", &name)]);
        pool.set_tenant_observer(spec.tenant, monitor);
    }

    // Zipf-skewed fleet traffic: the head tenant dominates, the tail
    // tenants keep getting evicted and cold-loaded.
    let fleet = fleet_events(&specs, sessions_per_tenant, 0.15, 1.0, 0xF1EE7);
    let mid = fleet.len() / 2;
    let drive = |pool: &mut TenantShardPool, events: &[FleetEvent]| {
        for ev in events {
            match ev {
                FleetEvent::Record { tenant, record } => {
                    pool.try_submit(*tenant, record).expect("submit");
                }
                FleetEvent::Close { tenant, session_id } => {
                    pool.close_session(*tenant, *session_id).expect("close")
                }
            }
        }
    };
    drive(&mut pool, &fleet[..mid]);

    // Mid-stream hot swap of tenant 1 only: retrained weights, same
    // vocabulary. Tenant-granular epoch bump — nobody else's score cache
    // is invalidated.
    let retrain_records = training_records(TenantArchetype::Commenting, 60, 0xF1E7);
    let mut retrain_cfg = UcadConfig::scenario1();
    retrain_cfg.model = TransDasConfig {
        hidden: 10,
        heads: 2,
        blocks: 2,
        window: 16,
        epochs: 6,
        seed: 0xD1CE,
        ..retrain_cfg.model
    };
    let (v1, _) = Ucad::train(&Session::from_log_records(&retrain_records), retrain_cfg);
    pool.swap_tenant(1, &v1).expect("swap tenant 1");
    println!("hot-swapped tenant 1 mid-stream (others untouched)");
    drive(&mut pool, &fleet[mid..]);

    for spec in &specs {
        let alerts = pool.drain_tenant_alerts(spec.tenant).expect("drain");
        println!(
            "tenant {} ({}-{}): {} alerts",
            spec.tenant,
            spec.archetype.name(),
            spec.tenant,
            alerts.len()
        );
    }
    let reg = pool.registry();
    println!(
        "registry churn: {} activations, {} evictions, {} cold loads",
        reg.activations(),
        reg.evictions(),
        reg.cold_loads()
    );

    println!("--- /metrics ---");
    print!("{}", pool.render_metrics());

    let (_registry, leftovers) = pool.shutdown().expect("shutdown");
    assert!(leftovers.is_empty(), "all alerts were drained per-tenant");
    let _ = std::fs::remove_dir_all(&dir);
}
