//! §6.7 user-study replays: the two real-world anomaly cases the paper's
//! DBAs diagnosed with UCAD's help.
//!
//! * **Case 1 — danmu bot**: a bot posts a danmu and likes it without ever
//!   opening the danmu panel (operations 11->4 with no preceding "open").
//! * **Case 2 — repackaged app**: a malicious app steals another app's
//!   credential and floods loc_rm with inserts (consecutive insert bursts).
//!
//! ```sh
//! cargo run --release --example case_studies
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucad::{Ucad, UcadConfig, Verdict};
use ucad_dbsim::OpKind;
use ucad_model::TransDasConfig;
use ucad_trace::{generate_raw_log, ScenarioSpec, SessionGenerator};

fn main() {
    case_danmu_bot();
    case_repackaged_app();
}

/// Case 1: commenting scenario. The bot session selects videos it never
/// interacted with and immediately posts + likes an invisible danmu.
fn case_danmu_bot() {
    println!("=== Case 1: the danmu bot (commenting scenario) ===");
    let spec = ScenarioSpec::commenting();
    let raw = generate_raw_log(&spec, 400, 0.05, 61);
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        epochs: 25,
        ..cfg.model
    };
    let (system, _) = Ucad::train(&raw.sessions, cfg);

    let mut gen = SessionGenerator::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(62);

    // The bot replays the same short task daily: select video, then
    // immediately insert a like and update the counter with no danmu
    // display in between (normal sessions open the danmu panel first).
    let sel_video = spec.ids_for("t_video", OpKind::Select)[0];
    let ins_like = spec.ids_for("t_like", OpKind::Insert)[0];
    let upd_content = spec.ids_for("t_content", OpKind::Update)[0];
    let ins_content = spec.ids_for("t_content", OpKind::Insert)[0];
    let bot_ids = vec![
        sel_video,
        sel_video,
        ins_content,
        ins_like,
        upd_content,
        ins_like,
        upd_content,
        sel_video,
        ins_like,
        upd_content,
    ];
    let bot = gen
        .session_for_user(&mut rng, "user3", "10.0.3.1", &bot_ids)
        .session;

    println!("bot session ({} ops):", bot.len());
    for (i, op) in bot.ops.iter().enumerate() {
        println!("  {:>2}: {}", i, op.sql);
    }
    match system.detect(&bot) {
        Verdict::IntentMismatch(d) => println!(
            "-> UCAD flags the session; first intent mismatch at operation {} \
             (the like/post without an open-danmu context)",
            d.first_anomaly.unwrap_or(0)
        ),
        other => println!("-> verdict: {other:?}"),
    }
    println!();
}

/// Case 2: location-service scenario. A repackaged app reports manipulated
/// locations: consecutive loc_rm inserts with very frequent updates, no
/// authentication read pattern.
fn case_repackaged_app() {
    println!("=== Case 2: the repackaged app (location-service scenario) ===");
    let spec = ScenarioSpec::location_service();
    let raw = generate_raw_log(&spec, 250, 0.0, 63);
    let mut cfg = UcadConfig::scenario2();
    cfg.model = TransDasConfig {
        hidden: 32,
        heads: 4,
        blocks: 2,
        window: 40,
        stride: 4,
        epochs: 5,
        ..cfg.model
    };
    let (system, _) = Ucad::train(&raw.sessions, cfg);

    let mut gen = SessionGenerator::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(64);

    // Normal reporting authenticates (picn+fp selects), reads, and inserts
    // exactly one location per cycle. The repackaged app authenticates with
    // the stolen credential and then floods loc_rm with bulk inserts of
    // manipulated locations — statements whose semantics belong to batch
    // maintenance, not to an authenticated reporting session.
    let sel_picn = spec.ids_for("t_cell_picn_0", OpKind::Select)[0];
    let sel_fp = spec.ids_for("t_cell_fp_0", OpKind::Select)[0];
    let sel_rm = spec.ids_for("loc_rm", OpKind::Select)[0];
    let ins_rm_single = spec.ids_for("loc_rm", OpKind::Insert)[0];
    let ins_rm_bulk = *spec
        .ids_for("loc_rm", OpKind::Insert)
        .last()
        .expect("bulk insert");
    let flood: Vec<usize> = vec![
        sel_picn,
        sel_fp,
        sel_rm,
        ins_rm_single, // looks like a normal cycle...
        ins_rm_bulk,
        ins_rm_bulk,
        ins_rm_bulk,
        ins_rm_bulk, // ...then the flood
        ins_rm_bulk,
        ins_rm_bulk,
        ins_rm_bulk,
        ins_rm_bulk,
    ];
    let rogue = gen
        .session_for_user(&mut rng, "svc7", "10.1.7.1", &flood)
        .session;

    println!(
        "rogue session ({} ops): one authenticated report cycle followed by {} bulk inserts into loc_rm",
        rogue.len(),
        rogue.len() - 4
    );
    match system.detect(&rogue) {
        Verdict::IntentMismatch(d) => println!(
            "-> UCAD flags the session; first intent mismatch at operation {} \
             (bulk-insert semantics out of the reporting-session intent)",
            d.first_anomaly.unwrap_or(0)
        ),
        other => println!("-> verdict: {other:?}"),
    }
}
