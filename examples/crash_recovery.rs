//! Crash-recovery quickstart: a durable serving engine survives `kill -9`.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```
//!
//! The binary re-executes itself as a sequence of *generations*. Every
//! generation recovers the durable engine from the same WAL directory,
//! resumes the canonical session stream past whatever is already durable,
//! and drains alerts to a shared file — while an armed
//! `UCAD_FAULTS=proc_crash=K` plan hard-aborts the process (no destructors,
//! no flushes — a simulated `kill -9`) just before its K-th WAL append. The
//! kill point shifts every generation, so crashes land on record appends,
//! control appends and drain markers alike; the generation whose kill point
//! lies past the end of the script survives and prints its metrics
//! (including `ucad_serve_recoveries_total 1` — it recovered exactly once,
//! at startup).
//!
//! The parent then replays the same stream through a plain in-memory engine
//! in-process and asserts the concatenated drained alerts of all crashed
//! generations are **identical** to the crash-free run: exactly-once alert
//! delivery across any number of crashes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use ucad::prelude::*;
use ucad_dbsim::LogRecord;
use ucad_trace::{generate_raw_log, ScenarioSpec, SessionGenerator};

/// Drain cadence of the canonical run, in script positions.
const DRAIN_EVERY: usize = 7;

/// Seeded training is bit-identical across processes, so every generation
/// independently rebuilds the exact same serving model. (Models are not
/// persisted in the WAL — recovery takes the system from the caller.)
fn system() -> Ucad {
    let raw = generate_raw_log(&ScenarioSpec::commenting(), 30, 0.0, 9001);
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        hidden: 8,
        heads: 2,
        blocks: 1,
        window: 8,
        epochs: 2,
        ..cfg.model
    };
    Ucad::train(&raw.sessions, cfg).0
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        cache_capacity: 128,
        queue_capacity: 32,
        ..ServeConfig::default()
    }
}

/// The canonical interleaved stream: six sessions, every other one carrying
/// an unknown statement mid-session (a deterministic alert regardless of
/// model weights). Returns the flattened records plus session ids.
fn script() -> (Vec<LogRecord>, Vec<u64>) {
    let mut gen = SessionGenerator::new(ScenarioSpec::commenting());
    let mut rng = StdRng::seed_from_u64(9002);
    let mut queues: Vec<Vec<LogRecord>> = Vec::new();
    let mut ids = Vec::new();
    for i in 0..6usize {
        let mut s = gen.normal_session(&mut rng).session;
        s.id = 70_000 + i as u64;
        if i % 2 == 1 {
            let mid = s.ops.len() / 2;
            s.ops[mid].sql = format!("DELETE FROM t_shadow WHERE id={i}");
        }
        ids.push(s.id);
        queues.push(
            s.ops
                .iter()
                .map(|op| LogRecord {
                    timestamp: op.timestamp,
                    user: s.user.clone(),
                    client_ip: s.client_ip.clone(),
                    session_id: s.id,
                    sql: op.sql.clone(),
                    table: op.table.clone(),
                    op: op.kind,
                    rows: 0,
                })
                .collect(),
        );
    }
    let mut stream = Vec::new();
    let mut cursors = vec![0usize; queues.len()];
    loop {
        let open: Vec<usize> = (0..queues.len())
            .filter(|&q| cursors[q] < queues[q].len())
            .collect();
        if open.is_empty() {
            break;
        }
        let q = open[rng.gen_range(0..open.len())];
        stream.push(queues[q][cursors[q]].clone());
        cursors[q] += 1;
    }
    (stream, ids)
}

/// Drains the engine completely and appends every alert as one JSON line.
/// Plain `File` writes, no userspace buffer: a later `abort(2)` cannot lose
/// what was already written here.
fn drain_to(engine: &mut ShardedOnlineUcad, out: &mut std::fs::File) {
    for alert in engine.drain_alerts() {
        let line = serde_json::to_string(&alert).expect("serialize alert");
        writeln!(out, "{line}").expect("append alert line");
    }
}

/// One child generation: recover, resume the script past what is already
/// durable, drain on the canonical cadence. The armed `proc_crash` plan
/// aborts somewhere in the middle; the generation that outlives the script
/// prints its metrics and writes the done marker.
fn run_child() {
    let var = |k: &str| std::env::var(k).unwrap_or_else(|_| panic!("missing env {k}"));
    let dir = PathBuf::from(var("UCAD_CRASH_DIR"));
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(var("UCAD_CRASH_ALERTS"))
        .expect("open alerts file");

    let durability = DurabilityConfig::new(&dir).snapshot_every(16);
    let mut engine =
        ShardedOnlineUcad::recover(system(), serve_cfg(), durability).expect("recover");
    let mut skip = engine.durable_ops_per_shard().expect("durable engine");
    println!("generation resumed: durable ops per shard {skip:?}");

    let (stream, ids) = script();
    let mut pos = 0usize;
    for record in &stream {
        pos += 1;
        if pos.is_multiple_of(DRAIN_EVERY) {
            drain_to(&mut engine, &mut out);
        }
        let shard = engine.shard_of(record.session_id);
        if skip[shard] > 0 {
            skip[shard] -= 1;
            continue;
        }
        assert_eq!(engine.try_submit(record), Ok(SubmitOutcome::Accepted));
    }
    for &id in &ids {
        pos += 1;
        if pos.is_multiple_of(DRAIN_EVERY) {
            drain_to(&mut engine, &mut out);
        }
        let shard = engine.shard_of(id);
        if skip[shard] > 0 {
            skip[shard] -= 1;
            continue;
        }
        engine.close_session(id);
    }
    engine.flush();
    drain_to(&mut engine, &mut out);

    println!("\n# --- surviving generation metrics ---");
    print!("{}", engine.render_metrics());
    engine.shutdown();
    std::fs::write(var("UCAD_CRASH_DONE"), b"done").expect("write done marker");
}

fn main() {
    if std::env::var_os("UCAD_CRASH_ROLE").is_some() {
        run_child();
        return;
    }

    let base = std::env::temp_dir().join(format!("ucad-crash-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create work dir");
    let state = base.join("state");
    let alerts = base.join("alerts.jsonl");
    let done = base.join("done");
    let exe = std::env::current_exe().expect("own binary path");

    let mut crashes = 0u32;
    for generation in 0u64.. {
        assert!(generation < 64, "failed to converge; WAL made no progress");
        // Shift the kill point every generation so crashes land on record
        // appends, control appends and drain markers alike.
        let kill_at = 10 + (generation % 5) * 7;
        println!("generation {generation}: arming proc_crash={kill_at}");
        let status = Command::new(&exe)
            .env("UCAD_CRASH_ROLE", "child")
            .env("UCAD_CRASH_DIR", &state)
            .env("UCAD_CRASH_ALERTS", &alerts)
            .env("UCAD_CRASH_DONE", &done)
            .env("UCAD_FAULTS", format!("proc_crash={kill_at}"))
            .status()
            .expect("spawn child generation");
        if done.exists() {
            assert!(status.success(), "surviving child exited with {status}");
            break;
        }
        println!("generation {generation}: killed ({status})");
        crashes += 1;
    }

    // Reference: the same script through a plain in-memory engine, no
    // crashes, one process. The drained alert stream must be identical.
    let mut engine = ShardedOnlineUcad::new(system(), serve_cfg());
    let (stream, ids) = script();
    for record in &stream {
        assert_eq!(engine.try_submit(record), Ok(SubmitOutcome::Accepted));
    }
    for &id in &ids {
        engine.close_session(id);
    }
    engine.flush();
    let expected = engine.drain_alerts();
    engine.shutdown();

    let raw = std::fs::read_to_string(&alerts).expect("read drained alerts");
    let recovered: Vec<Alert> = raw
        .lines()
        .map(|line| serde_json::from_str(line).expect("parse drained alert"))
        .collect();
    assert!(!expected.is_empty(), "the canonical script must alert");
    assert_eq!(
        recovered, expected,
        "recovered alert stream diverged from the crash-free run"
    );
    println!("\ncrashed generations: {crashes}");
    println!(
        "recovered alert stream matches the crash-free run ({} alerts)",
        expected.len()
    );
    let _ = std::fs::remove_dir_all(&base);
}
