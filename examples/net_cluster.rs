//! Cross-process serving: one logical UCAD engine spread over real daemon
//! processes, driven through the consistent-hash [`NetRouter`].
//!
//! ```sh
//! cargo run --release --example net_cluster
//! ```
//!
//! The example re-executes itself twice as daemon children (each child
//! trains the same seeded model, binds a loopback port and serves the
//! `ucad-net` protocol), routes an interleaved anomaly-bearing stream
//! across them, and proves the headline invariant of the network layer:
//! the merged cross-process alert stream is **byte-identical** to a
//! single-process engine ingesting the whole stream, because the router
//! assigns global arrival sequences and re-merges drained alerts with the
//! engine's own seq-sorted merge.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use ucad::prelude::*;
use ucad_dbsim::LogRecord;
use ucad_net::{NetDaemon, NetRouter, NetServeConfig};
use ucad_trace::{generate_raw_log, ScenarioSpec, SessionGenerator};

const CHILD_ENV: &str = "UCAD_NET_CLUSTER_CHILD";
const ROUTER_SEED: u64 = 0x5EED;

/// Deterministic tiny serving system: every process that calls this trains
/// bit-identical weights, so the daemons and the in-process reference all
/// serve the same model.
fn system() -> Ucad {
    let raw = generate_raw_log(&ScenarioSpec::commenting(), 60, 0.0, 4601);
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        hidden: 8,
        heads: 2,
        blocks: 1,
        window: 8,
        epochs: 3,
        ..cfg.model
    };
    Ucad::train(&raw.sessions, cfg).0
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        cache_capacity: 256,
        ..ServeConfig::default()
    }
}

/// Child mode: bind a daemon on an ephemeral loopback port, announce it on
/// stdout, serve until the router asks us to shut down.
fn run_child() {
    let cfg = NetServeConfig::builder()
        .addr("127.0.0.1:0")
        .serve(serve_cfg())
        .build()
        .expect("valid net serve configuration");
    let daemon = NetDaemon::bind(system(), cfg).expect("bind daemon");
    // Explicit flush: a piped (non-tty) stdout is block-buffered, and the
    // parent is waiting on this line before it connects.
    println!("NETD_ADDR={}", daemon.local_addr());
    std::io::Write::flush(&mut std::io::stdout()).expect("flush address line");
    daemon.run().expect("daemon serve loop");
}

/// A spawned daemon child, killed on drop so a panicking parent never
/// leaks processes.
struct DaemonChild {
    child: Child,
    addr: String,
}

impl Drop for DaemonChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon_child() -> DaemonChild {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .env(CHILD_ENV, "1")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read child stdout") == 0 {
            panic!("daemon child exited before announcing its address");
        }
        if let Some(at) = line.find("NETD_ADDR=") {
            break line[at + "NETD_ADDR=".len()..].trim().to_string();
        }
    };
    // Keep draining the child's stdout in the background so its training
    // progress lines can never fill the pipe and stall it.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    DaemonChild { child, addr }
}

/// Interleaved traffic: 10 sessions, the odd ones carrying an unknown
/// statement that alerts deterministically.
fn script() -> (Vec<LogRecord>, Vec<u64>) {
    let mut gen = SessionGenerator::new(ScenarioSpec::commenting());
    let mut rng = StdRng::seed_from_u64(777);
    let mut queues: Vec<Vec<LogRecord>> = Vec::new();
    let mut ids = Vec::new();
    for i in 0..10usize {
        let mut s = gen.normal_session(&mut rng).session;
        s.id = 70_000 + i as u64;
        if i % 2 == 1 {
            let mid = s.ops.len() / 2;
            s.ops[mid].sql = format!("DELETE FROM t_shadow WHERE id={i}");
        }
        ids.push(s.id);
        queues.push(
            s.ops
                .iter()
                .map(|op| LogRecord {
                    timestamp: op.timestamp,
                    user: s.user.clone(),
                    client_ip: s.client_ip.clone(),
                    session_id: s.id,
                    sql: op.sql.clone(),
                    table: op.table.clone(),
                    op: op.kind,
                    rows: 0,
                })
                .collect(),
        );
    }
    let mut stream = Vec::new();
    let mut cursors = vec![0usize; queues.len()];
    loop {
        let open: Vec<usize> = (0..queues.len())
            .filter(|&q| cursors[q] < queues[q].len())
            .collect();
        if open.is_empty() {
            break;
        }
        let q = open[rng.gen_range(0..open.len())];
        stream.push(queues[q][cursors[q]].clone());
        cursors[q] += 1;
    }
    (stream, ids)
}

fn main() {
    if std::env::var(CHILD_ENV).as_deref() == Ok("1") {
        run_child();
        return;
    }

    let (stream, ids) = script();

    // The single-process reference: the whole stream through one engine.
    println!("training the in-process reference engine…");
    let mut reference = ShardedOnlineUcad::new(system(), serve_cfg());
    for r in &stream {
        reference.try_submit(r).expect("reference submit");
    }
    for &id in &ids {
        reference.close_session(id);
    }
    let expected = reference.drain_alerts();
    drop(reference.shutdown());

    // The fleet: two daemon processes behind one router.
    println!("spawning 2 daemon processes…");
    let children: Vec<DaemonChild> = (0..2).map(|_| spawn_daemon_child()).collect();
    let addrs: Vec<String> = children.iter().map(|c| c.addr.clone()).collect();
    println!("daemons ready at {}", addrs.join(" and "));
    let mut router = NetRouter::connect(&addrs, ROUTER_SEED).expect("connect router");

    for (i, health) in router.health().expect("health").iter().enumerate() {
        println!(
            "daemon {i}: {} shards, model epoch {}, durable: {}",
            health.shards, health.model_epoch, health.durable
        );
    }

    // Same stream, same order — the router assigns each record its global
    // arrival sequence and ships it to its session's daemon.
    for r in &stream {
        assert_eq!(
            router.try_submit(r).expect("routed submit"),
            SubmitOutcome::Accepted
        );
    }
    for &id in &ids {
        router.close_session(id).expect("close");
    }
    let merged = router.drain_alerts().expect("drain fleet");
    println!(
        "submitted {} records across {} sessions and {} daemons",
        stream.len(),
        ids.len(),
        router.daemons()
    );
    for a in &merged {
        println!(
            "[ALARM] session {} (user {}): {:?} at operation {:?}",
            a.session_id, a.user, a.reason, a.position
        );
    }

    assert!(!merged.is_empty(), "the script must alert");
    assert_eq!(merged, expected, "cross-process alert stream diverged");
    println!(
        "cross-process alert stream matches the in-process reference ({} alerts)",
        merged.len()
    );

    // Fleet-wide accounting and transport counters, merged by the router.
    let stats = router.stats().expect("fleet stats");
    println!(
        "fleet shard load: {:?} records, shed {}, degraded {}",
        stats.records_per_shard, stats.records_shed, stats.records_degraded
    );
    println!("\n# --- fleet metrics (per-daemon, ucad_net_* transport counters included) ---");
    print!("{}", router.render_metrics().expect("fleet metrics"));

    let finals = router.shutdown().expect("fleet shutdown");
    for (i, s) in finals.iter().enumerate() {
        println!("daemon {i} final: {} records served", s.records());
    }
}
