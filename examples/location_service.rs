//! Scenario-II walkthrough: the location service.
//!
//! Trains a (scaled) Trans-DAS on location-service sessions, evaluates the
//! six test sets, and prints the attention view of a cell-update session —
//! the paper's Figure 6 pattern of alternating INSERT/SELECT bursts.
//!
//! ```sh
//! cargo run --release --example location_service
//! ```

use ucad::{run_transdas, TokenizedDataset};
use ucad_model::{DetectionMode, DetectorConfig, TransDas, TransDasConfig};
use ucad_trace::{ScenarioDataset, ScenarioSpec};

fn main() {
    let spec = ScenarioSpec::location_service();
    println!(
        "scenario: {} — {} tables, {} statement keys, avg session length {}",
        spec.name,
        spec.tables.len(),
        spec.templates.len(),
        spec.avg_session_len
    );

    // Scaled run (paper scale is 3722 sessions / h=64 / B=6 / L=100; see
    // the bench harness with UCAD_FULL=1 for that).
    let ds = ScenarioDataset::generate(&spec, 400, 7);
    let data = TokenizedDataset::from_dataset(&ds);
    println!(
        "dataset: train {}, vocabulary {} keys",
        ds.train.len(),
        data.vocab.len()
    );

    let cfg = TransDasConfig {
        hidden: 32,
        heads: 4,
        blocks: 3,
        window: 50,
        stride: 4,
        epochs: 6,
        ..TransDasConfig::scenario2(0)
    };
    let det = DetectorConfig {
        top_p: 10,
        min_context: 2,
        mode: DetectionMode::Block,
    };
    let (row, report) = run_transdas(&data, "Trans-DAS", cfg, det);
    println!(
        "trained {} windows in {:.1}s/epoch; final loss {:.4}",
        report.windows,
        report.epoch_secs.iter().sum::<f64>() / report.epoch_secs.len().max(1) as f64,
        report.epoch_losses.last().unwrap_or(&f32::NAN)
    );
    println!("{}", row.format_row());

    // Attention probe on one in-window session (the Figure 6 view).
    let mut probe_cfg = cfg;
    probe_cfg.vocab_size = data.vocab.key_space();
    probe_cfg.epochs = 3;
    let mut model = TransDas::new(probe_cfg);
    model.train(&data.train);
    if let Some(session) = data.test_sets[0]
        .1
        .iter()
        .find(|s| s.len() >= 8 && s.len() <= 14 && !s.contains(&0))
    {
        println!("\nattention view of a normal session {:?}:", session);
        let padded = model.pad_window(session);
        let (_, attn) = model.output_with_attention(&padded);
        let pad = probe_cfg.window - session.len();
        for i in 0..session.len() {
            let row = &attn.row(pad + i)[pad..];
            let best = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(j, _)| j)
                .unwrap_or(i);
            println!(
                "  op {:>2} (k{:<4}) attends most to op {:>2} (k{:<4}) [w={:.3}]  {}",
                i,
                session[i],
                best,
                session[best],
                row[best],
                data.vocab
                    .template(session[i])
                    .map(|t| &t[..t.len().min(60)])
                    .unwrap_or("<unknown>")
            );
        }
    }
}
