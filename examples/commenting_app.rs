//! Scenario-I walkthrough: the online commenting application.
//!
//! Generates the Table 1-calibrated dataset, trains Trans-DAS and two
//! baselines on identical inputs, and prints a miniature Table 2 comparison
//! (FPR on V1-V3, FNR on A1-A3, aggregate P/R/F1).
//!
//! ```sh
//! cargo run --release --example commenting_app
//! ```

use ucad::{run_baseline, run_transdas, TokenizedDataset};
use ucad_baselines::{IsolationForest, Kernel, OneClassSvm};
use ucad_model::{DetectorConfig, TransDasConfig};
use ucad_trace::{ScenarioDataset, ScenarioSpec};

fn main() {
    let spec = ScenarioSpec::commenting();
    println!(
        "scenario: {} — {} tables, {} statement keys, avg session length {}",
        spec.name,
        spec.tables.len(),
        spec.templates.len(),
        spec.avg_session_len
    );

    // Paper-scale dataset: 354 training sessions, 89 sessions per test set.
    let ds = ScenarioDataset::generate(&spec, 354, 1);
    println!(
        "dataset: train {} | V1 {} V2 {} V3 {} | A1 {} A2 {} A3 {}",
        ds.train.len(),
        ds.v1.len(),
        ds.v2.len(),
        ds.v3.len(),
        ds.a1.len(),
        ds.a2.len(),
        ds.a3.len()
    );
    let data = TokenizedDataset::from_dataset(&ds);
    println!("vocabulary: {} keys\n", data.vocab.len());

    let header = format!(
        "{:<22} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} |",
        "method", "FPR:V1", "FPR:V2", "FPR:V3", "FNR:A1", "FNR:A2", "FNR:A3"
    );
    println!("{header}");

    let mut svm = OneClassSvm::new(0.05, Kernel::Linear);
    println!("{}", run_baseline(&data, &mut svm).format_row());

    let mut forest = IsolationForest::new(0.97);
    println!("{}", run_baseline(&data, &mut forest).format_row());

    // Trans-DAS with the paper's Scenario-I defaults.
    let model_cfg = TransDasConfig::scenario1(0);
    let det_cfg = DetectorConfig::scenario1();
    let (row, report) = run_transdas(&data, "Trans-DAS (ours)", model_cfg, det_cfg);
    println!("{}", row.format_row());
    println!(
        "\nTrans-DAS: {} windows, {:.1}s/epoch, final loss {:.4}",
        report.windows,
        report.epoch_secs.iter().sum::<f64>() / report.epoch_secs.len().max(1) as f64,
        report.epoch_losses.last().unwrap_or(&f32::NAN)
    );
}
