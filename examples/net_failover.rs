//! Fault-tolerant cross-process serving: a router soak through network
//! damage, a daemon kill, and durable failover.
//!
//! ```sh
//! cargo run --release --example net_failover
//! ```
//!
//! The example re-executes itself as two **durable** daemon children. The
//! victim child arms network faults from the environment
//! (`conn_reset` + `torn_frame`) and finally `crash_reply` — it dies
//! mid-stream with a submit consumed but unacknowledged. A supervisor
//! thread respawns it over the same durable directory (crash recovery
//! restores the engine *and* its arrival-sequence watermark) and repoints
//! the router's address book; the router's reconnect-and-resubmit loop
//! replays the lost-ack submit, which the recovered engine dup-acks below
//! its watermark. The replacement additionally blackholes one request to
//! force a client read-deadline expiry, and the daemons run a short idle
//! deadline so an abandoned connection demonstrates the reap.
//!
//! Despite all of it, the merged alert stream must be **byte-identical**
//! to a single-process engine serving the unfaulted stream, with exact
//! `accepted + shed + degraded == submitted` accounting — and every one of
//! the five resilience counters (`ucad_net_{retries,reconnects,timeouts,
//! resubmitted,idle_reaped}_total`) strictly positive, printed at the end
//! for CI to grep.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use ucad::prelude::*;
use ucad::{splitmix64, DurabilityConfig};
use ucad_dbsim::LogRecord;
use ucad_net::{
    NetClientConfig, NetDaemon, NetRouter, NetRouterConfig, NetServeConfig, RetryPolicy,
};
use ucad_trace::{generate_raw_log, ScenarioSpec, SessionGenerator};

const CHILD_ENV: &str = "UCAD_NET_FAILOVER_CHILD";
const ROUTER_SEED: u64 = 0xFA11;
const DAEMONS: usize = 2;
/// The victim aborts itself just before acking this many submit replies.
const CRASH_AT: u64 = 9;

/// Deterministic tiny serving system: every process that calls this trains
/// bit-identical weights, so the daemons and the in-process reference all
/// serve the same model.
fn system() -> Ucad {
    let raw = generate_raw_log(&ScenarioSpec::commenting(), 60, 0.0, 4601);
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        hidden: 8,
        heads: 2,
        blocks: 1,
        window: 8,
        epochs: 3,
        ..cfg.model
    };
    Ucad::train(&raw.sessions, cfg).0
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        cache_capacity: 256,
        ..ServeConfig::default()
    }
}

/// Child mode: bind a durable daemon with a short idle deadline, announce
/// it on stdout, serve until shutdown (or until an armed `crash_reply`
/// fault aborts the process).
fn run_child() {
    let dir = std::env::var_os("UCAD_NETD_DIR").expect("durable dir env");
    let cfg = NetServeConfig::builder()
        .addr("127.0.0.1:0")
        .serve(serve_cfg())
        .durability(DurabilityConfig::new(PathBuf::from(dir)))
        .idle_timeout(Duration::from_millis(500))
        .build()
        .expect("valid net serve configuration");
    let daemon = NetDaemon::bind(system(), cfg).expect("bind daemon");
    // Explicit flush: a piped (non-tty) stdout is block-buffered, and the
    // parent is waiting on this line before it connects.
    println!("NETD_ADDR={}", daemon.local_addr());
    std::io::Write::flush(&mut std::io::stdout()).expect("flush address line");
    daemon.run().expect("daemon serve loop");
}

/// A spawned daemon child, killed on drop so a panicking parent never
/// leaks processes.
struct DaemonChild {
    child: Child,
    addr: String,
}

impl Drop for DaemonChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon_child(dir: &Path, faults: Option<&str>) -> DaemonChild {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = Command::new(exe);
    cmd.env(CHILD_ENV, "1")
        .env("UCAD_NETD_DIR", dir)
        .stdout(Stdio::piped());
    if let Some(faults) = faults {
        cmd.env("UCAD_FAULTS", faults);
    }
    let mut child = cmd.spawn().expect("spawn daemon child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read child stdout") == 0 {
            panic!("daemon child exited before announcing its address");
        }
        if let Some(at) = line.find("NETD_ADDR=") {
            break line[at + "NETD_ADDR=".len()..].trim().to_string();
        }
    };
    // Keep draining the child's stdout in the background so its training
    // progress lines can never fill the pipe and stall it.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    DaemonChild { child, addr }
}

/// Interleaved traffic: 10 sessions, the odd ones carrying an unknown
/// statement that alerts deterministically.
fn script() -> (Vec<LogRecord>, Vec<u64>) {
    let mut gen = SessionGenerator::new(ScenarioSpec::commenting());
    let mut rng = StdRng::seed_from_u64(4242);
    let mut queues: Vec<Vec<LogRecord>> = Vec::new();
    let mut ids = Vec::new();
    for i in 0..10usize {
        let mut s = gen.normal_session(&mut rng).session;
        s.id = 80_000 + i as u64;
        if i % 2 == 1 {
            let mid = s.ops.len() / 2;
            s.ops[mid].sql = format!("DELETE FROM t_shadow WHERE id={i}");
        }
        ids.push(s.id);
        queues.push(
            s.ops
                .iter()
                .map(|op| LogRecord {
                    timestamp: op.timestamp,
                    user: s.user.clone(),
                    client_ip: s.client_ip.clone(),
                    session_id: s.id,
                    sql: op.sql.clone(),
                    table: op.table.clone(),
                    op: op.kind,
                    rows: 0,
                })
                .collect(),
        );
    }
    let mut stream = Vec::new();
    let mut cursors = vec![0usize; queues.len()];
    loop {
        let open: Vec<usize> = (0..queues.len())
            .filter(|&q| cursors[q] < queues[q].len())
            .collect();
        if open.is_empty() {
            break;
        }
        let q = open[rng.gen_range(0..open.len())];
        stream.push(queues[q][cursors[q]].clone());
        cursors[q] += 1;
    }
    (stream, ids)
}

/// Sums one counter across the fleet's concatenated exposition.
fn fleet_counter(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .filter_map(|l| l.strip_prefix(&format!("{name} ")))
        .filter_map(|v| v.trim().parse::<u64>().ok())
        .sum()
}

fn global_counter(name: &str) -> u64 {
    ucad_obs::global().counter(name, &[]).get()
}

fn main() {
    if std::env::var(CHILD_ENV).as_deref() == Ok("1") {
        run_child();
        return;
    }

    let (stream, ids) = script();

    // The single-process, unfaulted reference.
    println!("training the in-process reference engine…");
    let mut reference = ShardedOnlineUcad::new(system(), serve_cfg());
    for r in &stream {
        reference.try_submit(r).expect("reference submit");
    }
    for &id in &ids {
        reference.close_session(id);
    }
    let expected = reference.drain_alerts();
    drop(reference.shutdown());
    assert!(!expected.is_empty(), "the script must alert");

    // The fleet: two durable daemon processes. The victim (whichever
    // daemon serves the first session) arms resets + torn submit acks and
    // a self-kill; its eventual replacement blackholes one request to
    // force a client read-deadline expiry.
    let base =
        std::env::temp_dir().join(format!("ucad-net-failover-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let victim_idx = (splitmix64(ROUTER_SEED ^ ids[0]) % DAEMONS as u64) as usize;
    println!("spawning {DAEMONS} durable daemon processes (victim: daemon {victim_idx})…");
    let mut children: Vec<Option<DaemonChild>> = Vec::new();
    let mut dirs = Vec::new();
    for i in 0..DAEMONS {
        let dir = base.join(format!("daemon-{i}"));
        std::fs::create_dir_all(&dir).expect("daemon state dir");
        let faults =
            (i == victim_idx).then(|| format!("conn_reset=11;torn_frame=7;crash_reply={CRASH_AT}"));
        children.push(Some(spawn_daemon_child(&dir, faults.as_deref())));
        dirs.push(dir);
    }
    let addrs: Vec<String> = children
        .iter()
        .map(|c| c.as_ref().expect("spawned").addr.clone())
        .collect();
    println!("daemons ready at {}", addrs.join(" and "));

    // The client read deadline must undercut the daemons' 500ms idle
    // deadline: a blackholed request then surfaces as a counted timeout
    // rather than being reaped into a plain EOF. The failover budget is
    // generous enough to cover respawn + retraining.
    let mut router = NetRouter::connect_with(
        &addrs,
        ROUTER_SEED,
        NetRouterConfig {
            client: NetClientConfig {
                read_timeout: Duration::from_millis(300),
                ..NetClientConfig::default()
            },
            failover: RetryPolicy {
                attempts: 120,
                backoff_base: Duration::from_millis(50),
                backoff_cap: Duration::from_secs(1),
            },
        },
    )
    .expect("connect router");
    let book = router.addr_book();

    // The supervisor: reap the victim's corpse, respawn it over the same
    // durable directory (with the blackhole armed), repoint the book.
    let victim = children[victim_idx].take().expect("victim spawned");
    let victim_dir = dirs[victim_idx].clone();
    let supervisor_book = book.clone();
    let supervisor = std::thread::spawn(move || {
        let mut victim = victim;
        let status = victim.child.wait().expect("victim exit status");
        assert!(!status.success(), "victim must die by fault injection");
        println!("victim daemon died ({status}); respawning over its durable state…");
        let replacement = spawn_daemon_child(&victim_dir, Some("blackhole=5..6"));
        println!("replacement ready at {}", replacement.addr);
        supervisor_book.set(victim_idx, replacement.addr.clone());
        replacement
    });

    // Drive the whole stream through the damage.
    for r in &stream {
        assert_eq!(
            router.try_submit(r).expect("healed submit"),
            SubmitOutcome::Accepted
        );
    }
    for &id in &ids {
        router.close_session(id).expect("healed close");
    }
    let merged = router.drain_alerts().expect("healed drain");
    let replacement = supervisor.join().expect("supervisor thread");
    children[victim_idx] = Some(replacement);

    assert_eq!(
        merged, expected,
        "alert stream diverged through kill + recovery + failover"
    );
    println!(
        "alert stream byte-identical through kill -9 + durable failover ({} alerts)",
        merged.len()
    );

    // Exact accounting: the lost-ack submit is counted exactly once.
    let stats = router.stats().expect("fleet stats");
    let submitted = stream.len() as u64;
    assert_eq!(stats.records_shed, 0);
    assert_eq!(stats.records_degraded, 0);
    assert_eq!(
        stats.records() + stats.records_shed + stats.records_degraded,
        submitted,
        "accepted + shed + degraded != submitted"
    );
    println!("exact accounting: accepted + shed + degraded == submitted == {submitted}");

    // Demonstrate the idle reap: abandon a connection past the daemons'
    // idle deadline and let the daemon close it.
    let idle = TcpStream::connect(book.get(victim_idx)).expect("idle connect");
    let mut byte = [0u8; 1];
    let mut idle_reader = idle;
    assert_eq!(
        idle_reader.read(&mut byte).expect("reaped connection EOFs"),
        0,
        "daemon must close the idle connection"
    );

    // The five resilience counters, all non-vacuous, in exposition format
    // for CI to grep.
    let metrics = router.render_metrics().expect("fleet metrics");
    let counters = [
        (
            "ucad_net_retries_total",
            global_counter("ucad_net_retries_total"),
        ),
        (
            "ucad_net_reconnects_total",
            global_counter("ucad_net_reconnects_total"),
        ),
        (
            "ucad_net_timeouts_total",
            global_counter("ucad_net_timeouts_total"),
        ),
        (
            "ucad_net_resubmitted_total",
            fleet_counter(&metrics, "ucad_net_resubmitted_total"),
        ),
        (
            "ucad_net_idle_reaped_total",
            fleet_counter(&metrics, "ucad_net_idle_reaped_total"),
        ),
    ];
    println!("\n# --- resilience counters (router-side + fleet-side) ---");
    for (name, value) in counters {
        assert!(value > 0, "{name} must be non-vacuous in the soak");
        println!("{name} {value}");
    }

    // Heal every connection (the short idle deadline may have reaped
    // some while we were waiting), then stop the fleet.
    router.health().expect("fleet health");
    let finals = router.shutdown().expect("fleet shutdown");
    for (i, s) in finals.iter().enumerate() {
        println!("daemon {i} final: {} records served", s.records());
    }
    let _ = std::fs::remove_dir_all(&base);
}
