//! Transferability demo (§6.6): UCAD's Trans-DAS applied unchanged to
//! system-log anomaly detection on an HDFS-like dataset, next to LogCluster
//! and DeepLog.
//!
//! ```sh
//! cargo run --release --example syslog_transfer
//! ```

use ucad::evaluate_log_dataset;
use ucad_baselines::{BaselineDetector, DeepLog, LogCluster};
use ucad_model::{DetectionMode, Detector, DetectorConfig, TransDas, TransDasConfig};
use ucad_preprocess::Vocabulary;
use ucad_trace::SyslogSpec;

fn main() {
    let spec = SyslogSpec::hdfs_like();
    let ds = spec.generate(200, 600, 33);
    println!(
        "dataset: {} — {} train sessions, {} test sessions ({:.1}% abnormal)",
        ds.name,
        ds.train.len(),
        ds.test.len(),
        ds.anomaly_rate() * 100.0
    );
    let vocab = Vocabulary::from_event_sessions(&ds.train);
    let train_keys: Vec<Vec<u32>> = ds.train.iter().map(|s| vocab.tokenize_events(s)).collect();
    println!("log-template vocabulary: {} keys", vocab.len());

    let mut lc = LogCluster::new(0.9, 0.95);
    lc.fit(&train_keys, vocab.key_space());
    let r = evaluate_log_dataset(&ds, &vocab, "LogCluster", |k| lc.is_abnormal(k));
    println!(
        "{:<12} P {:.3}  R {:.3}  F1 {:.3}",
        r.method, r.precision, r.recall, r.f1
    );

    let mut dl = DeepLog::new(10, 3);
    dl.epochs = 4;
    dl.fit(&train_keys, vocab.key_space());
    let r = evaluate_log_dataset(&ds, &vocab, "DeepLog", |k| dl.is_abnormal(k));
    println!(
        "{:<12} P {:.3}  R {:.3}  F1 {:.3}",
        r.method, r.precision, r.recall, r.f1
    );

    // Trans-DAS with the paper's transfer configuration (L=10, g=0.5, h=64).
    let mut cfg = TransDasConfig::syslog(vocab.key_space());
    cfg.epochs = 6;
    let mut model = TransDas::new(cfg);
    model.train(&train_keys);
    let det = Detector::new(
        &model,
        DetectorConfig {
            top_p: (vocab.len() / 3).clamp(2, 10),
            min_context: 2,
            mode: DetectionMode::Block,
        },
    );
    let r = evaluate_log_dataset(&ds, &vocab, "Ours (UCAD)", |k| {
        det.detect_session(k).abnormal
    });
    println!(
        "{:<12} P {:.3}  R {:.3}  F1 {:.3}",
        r.method, r.precision, r.recall, r.f1
    );
    println!("\n(expected: LogCluster precise but low recall; UCAD/DeepLog high recall)");
}
