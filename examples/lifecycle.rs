//! Lifecycle quickstart: the full train → checkpoint → serve → drift →
//! retrain → hot-swap loop from `ucad-life`.
//!
//! ```sh
//! cargo run --release --example lifecycle
//! ```
//!
//! The paper assumes the detector is retrained as access patterns evolve
//! (§2, §5.2, §6.3); this example runs that prescription end to end: a
//! commenting-application model drifts when location-service traffic
//! arrives, the drift monitor alarms, a candidate is retrained on the
//! engine's verified-normal feedback, gated on a holdout, committed to the
//! checkpoint store, and hot-swapped into the serving engine without
//! dropping a record.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use ucad::prelude::*;
use ucad_dbsim::LogRecord;
use ucad_life::{
    CheckpointStore, DriftBaseline, DriftConfig, DriftMonitor, GateConfig, LifecycleManager,
    Promotion, Retrainer, SessionJournal,
};
use ucad_trace::{generate_raw_log, ScenarioSpec, Session, SessionGenerator};

fn records_of(session: &Session) -> Vec<LogRecord> {
    session
        .ops
        .iter()
        .map(|op| LogRecord {
            timestamp: op.timestamp,
            user: session.user.clone(),
            client_ip: session.client_ip.clone(),
            session_id: session.id,
            sql: op.sql.clone(),
            table: op.table.clone(),
            op: op.kind,
            rows: 0,
        })
        .collect()
}

/// Streams `n` sessions from `spec` through the engine and closes them.
fn serve_sessions(
    engine: &mut ShardedOnlineUcad,
    spec: &ScenarioSpec,
    n: usize,
    id_base: u64,
    seed: u64,
) -> usize {
    let mut gen = SessionGenerator::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut submitted = 0;
    for i in 0..n {
        let mut s = gen.normal_session(&mut rng).session;
        s.id = id_base + i as u64;
        for r in records_of(&s) {
            engine.try_submit(&r).expect("submit");
            submitted += 1;
        }
        engine.close_session(s.id);
    }
    submitted
}

fn main() {
    // 1. Offline: train v0 on a clean commenting-application audit log.
    let spec = ScenarioSpec::commenting();
    let raw = generate_raw_log(&spec, 400, 0.0, 42);
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        epochs: 14,
        ..cfg.model
    };
    let (system, _) = Ucad::train(&raw.sessions, cfg);

    // 2. Checkpoint v0: content-hashed id, CRC-validated envelope, atomic
    //    rename-on-commit, at most 3 resident versions.
    let store = CheckpointStore::open("target/lifecycle-checkpoints", 3).expect("open store");
    // Gate thresholds are scenario-tuned: this small demo model carries a
    // noticeable false-alarm rate, so the ceiling sits above it while the
    // regression slack still rejects a clearly worse candidate.
    let gate = GateConfig {
        max_false_alarm_rate: 0.6,
        max_rate_regression: 0.25,
        min_holdout: 4,
    };
    let mut life = LifecycleManager::new(store, gate);
    let v0 = life.checkpoint(&system.model).expect("checkpoint v0");
    println!("checkpointed v0 as {v0}");

    // 3. Drift baseline: replay the detector over a verified-normal corpus
    //    tokenized under the frozen vocabulary — the reference every live
    //    window is compared against.
    let mut gen = SessionGenerator::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let corpus: Vec<Vec<u32>> = (0..60)
        .map(|_| {
            system
                .preprocessor
                .transform(&gen.normal_session(&mut rng).session)
        })
        .collect();
    let drift_cfg = DriftConfig {
        window: 128,
        psi_threshold: 0.75,
        // This demo model carries a ~13% false-alarm rate, so a short
        // streak of alerted sessions can spike the EWMA; give the rate
        // statistic headroom so only sustained shifts alarm.
        ewma_factor: 4.0,
        ewma_margin: 0.1,
        ..DriftConfig::default()
    };
    let baseline = DriftBaseline::from_keyed_sessions(&system, &corpus, drift_cfg.rank_buckets)
        .expect("baseline");
    println!(
        "drift baseline: alert_rate {:.4} over {} sessions",
        baseline.alert_rate,
        corpus.len()
    );
    let monitor = Arc::new(DriftMonitor::new(drift_cfg, baseline).expect("monitor"));

    // 4. Online: a sharded engine with the monitor subscribed as an
    //    observer; its `ucad_life_*` cells join the engine registry.
    let serve_cfg = ServeConfig {
        shards: 2,
        cache_capacity: 256,
        ..ServeConfig::default()
    };
    let mut engine = ShardedOnlineUcad::try_new_observed(
        system,
        serve_cfg,
        Some(Arc::clone(&monitor) as Arc<dyn ServeObserver>),
    )
    .expect("engine");
    monitor.register_metrics(engine.registry(), &[]);

    // 5. Calm traffic: the scenario the model was trained on. No alarm.
    let n = serve_sessions(&mut engine, &spec, 60, 1_000, 7);
    engine.flush();
    println!(
        "served {n} in-distribution records: {} drift alarm(s), epoch {}",
        monitor.alarms(),
        engine.model_epoch()
    );

    // 6. The rolling journal: seeded with the historical training corpus
    //    (tokenized under the frozen vocabulary), extended with the
    //    engine's verified-normal feedback while the workload is still
    //    healthy — this is the retraining corpus (§5.2 concept drift
    //    handling).
    let mut journal = SessionJournal::new(1024);
    journal.extend(
        raw.sessions
            .iter()
            .map(|s| engine.system().preprocessor.transform(s)),
    );
    journal.extend(engine.drain_feedback());
    println!("journal holds {} verified-normal sessions", journal.len());

    // 7. Drift: the application changes — location-service traffic hits a
    //    commenting-trained model. Unknown statements tokenize to k0, the
    //    unseen-ratio and PSI statistics breach, the monitor alarms.
    let shifted = ScenarioSpec::location_service();
    let n = serve_sessions(&mut engine, &shifted, 12, 5_000, 8);
    engine.flush();
    let snap = monitor.snapshot();
    println!(
        "served {n} shifted records: {} drift alarm(s), unseen ratio {:.3}, PSI {:.3}",
        snap.alarms, snap.last_unseen_ratio, snap.last_psi
    );

    // 8. Retrain in the background on the journal, holding every 4th
    //    session out for the shadow gate.
    let (train, holdout) = journal.split_holdout(4);
    let retrainer = Retrainer::spawn(engine.system().model.cfg, train).expect("non-empty journal");
    let candidate = retrainer.join().model;

    // 9. Promote: shadow-validate on the holdout, commit to the store,
    //    reload from the committed checkpoint, hot-swap at a flush barrier.
    match life
        .promote(&mut engine, candidate, &holdout)
        .expect("promotion protocol")
    {
        Promotion::Swapped { id, epoch, gate } => println!(
            "promoted {id}: epoch {epoch}, candidate FAR {:.4} vs serving {:.4} on {} holdout sessions",
            gate.candidate_rate, gate.serving_rate, gate.holdout_sessions
        ),
        Promotion::Rejected(gate) => println!(
            "candidate rejected: {}",
            gate.reason.unwrap_or_else(|| "gate failed".into())
        ),
    }
    println!("store now holds versions {:?}", life.store().versions());

    // 10. Post-swap serving continues on the new weights — byte-identical
    //     to a cold start on the promoted checkpoint.
    let n = serve_sessions(&mut engine, &spec, 10, 9_000, 9);
    let alerts = engine.drain_alerts();
    println!(
        "served {n} records on epoch {}: {} alert(s) pending",
        engine.model_epoch(),
        alerts.len()
    );

    // 11. Exposition: serve, cache and lifecycle metrics share one registry.
    println!("\n# --- engine + lifecycle metrics ---");
    print!("{}", engine.render_metrics());

    let report = engine.shutdown();
    println!(
        "shutdown: {} verified-normal sessions buffered for the next retrain",
        report.verified_normals.len()
    );
}
