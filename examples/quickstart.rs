//! Quickstart: train UCAD on a synthetic commenting-application audit log
//! and detect anomalies in fresh sessions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ucad::prelude::*;
use ucad_trace::{generate_raw_log, AnomalySynthesizer, ScenarioSpec, SessionGenerator};

fn main() {
    // 1. A raw audit log: ~400 normal sessions plus 10% mixed noise
    //    (unknown addresses, structureless sessions, fragments).
    let spec = ScenarioSpec::commenting();
    let raw = generate_raw_log(&spec, 400, 0.10, 42);
    println!(
        "raw log: {} sessions ({} known noise)",
        raw.sessions.len(),
        raw.noise_indices.len()
    );

    // 2. Offline training: preprocessing (tokenize, policy-filter, cluster)
    //    then Trans-DAS on the purified sessions.
    let mut cfg = UcadConfig::scenario1();
    cfg.model = TransDasConfig {
        epochs: 20,
        ..cfg.model
    };
    let (system, report) = Ucad::train(&raw.sessions, cfg);
    println!(
        "preprocessing: {} policy-rejected, {} clusters, {} purified sessions, vocab {}",
        report.preprocess.policy_rejected,
        report.preprocess.clean_stats.clusters,
        report.purified_sessions,
        report.preprocess.vocab_size
    );
    println!(
        "training: {} windows, final loss {:.4} ({:.1}s/epoch)",
        report.model.windows,
        report.model.epoch_losses.last().unwrap_or(&f32::NAN),
        report.model.epoch_secs.iter().sum::<f64>() / report.model.epoch_secs.len() as f64
    );

    // 3. Online detection on fresh traffic.
    let mut gen = SessionGenerator::new(spec.clone());
    let synth = AnomalySynthesizer::new(&spec);
    let mut rng = StdRng::seed_from_u64(25);

    let normal = gen.normal_session(&mut rng).session;
    report_verdict("fresh normal session", system.detect(&normal));

    let base = gen.normal_session(&mut rng).session;
    let stealthy = synth.credential_stealing(&base, &mut gen, &mut rng);
    report_verdict(
        "credential-stealing session (A2: <10% injected deletes)",
        system.detect(&stealthy.session),
    );

    let miso = synth.misoperation(&mut gen, &mut rng);
    report_verdict(
        "misoperation session (A3: rare ops)",
        system.detect(&miso.session),
    );

    let violating = gen.noise_policy_violation(&mut rng).session;
    report_verdict("unknown-address session", system.detect(&violating));
}

fn report_verdict(label: &str, verdict: Verdict) {
    match verdict {
        Verdict::Normal => println!("[PASS]  {label}"),
        Verdict::PolicyViolation(v) => println!("[BLOCK] {label}: policy {v:?}"),
        Verdict::IntentMismatch(d) => println!(
            "[ALARM] {label}: intent mismatch at operation {:?}",
            d.first_anomaly
        ),
    }
}
