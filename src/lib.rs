//! Umbrella crate re-exporting the UCAD reproduction workspace.
pub use ucad as core;
pub use ucad::prelude;
pub use ucad_baselines as baselines;
pub use ucad_dbsim as dbsim;
pub use ucad_life as life;
pub use ucad_model as model;
pub use ucad_nn as nn;
pub use ucad_preprocess as preprocess;
pub use ucad_trace as trace;
