#!/bin/bash
cd /root/repo
cargo test --workspace --release 2>&1 | tee /root/repo/test_output.txt
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
touch /root/repo/.final_done
