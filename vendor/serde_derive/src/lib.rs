//! Vendored offline derive macros for the workspace's serde stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! non-generic structs and enums by walking the raw token stream (the
//! offline build has no `syn`/`quote`). Generated impls target the
//! value-tree model in the sibling `serde` crate and mirror serde's JSON
//! conventions: structs as objects in declaration order, newtype structs
//! transparent, enums externally tagged.
//!
//! Field *types* are never parsed: generated code leans on type inference
//! through generic helpers (`serde::de::field`, `Serialize::serialize`), so
//! the parser only needs names and arities.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// Parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum over the given variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---- parsing ---------------------------------------------------------------

fn strip_raw(ident: &str) -> String {
    ident.strip_prefix("r#").unwrap_or(ident).to_string()
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis<I: Iterator<Item = TokenTree>>(toks: &mut Peekable<I>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute body, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_input(item: TokenStream) -> Input {
    let mut toks = item.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => strip_raw(&id.to_string()),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic type `{name}`");
    }
    let shape = match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

/// Parses `name: Type, ...` field lists, returning the names. Types are
/// skipped with angle-bracket depth tracking so nested generics and commas
/// inside them do not end a field early (parenthesized types arrive as
/// atomic groups and need no handling).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => strip_raw(&id.to_string()),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        let mut depth = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    fields
}

/// Counts the types in a tuple-struct/-variant body.
fn count_tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut pending = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    arity + usize::from(pending)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => strip_raw(&id.to_string()),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_arity(g.stream());
                toks.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume up to and including the variant separator (tolerating an
        // explicit discriminant, which never appears with data variants).
        for tok in toks.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- codegen ---------------------------------------------------------------

/// `Vec::from([a, b, ...])`, with the empty case typed explicitly.
fn vec_expr(items: &[String], elem_ty: &str) -> String {
    if items.is_empty() {
        format!("::std::vec::Vec::from([] as [{elem_ty}; 0])")
    } else {
        format!("::std::vec::Vec::from([{}])", items.join(", "))
    }
}

const PAIR_TY: &str = "(::std::string::String, ::serde::Value)";

fn object_expr(pairs: &[(String, String)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Object({})", vec_expr(&items, PAIR_TY))
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::serialize(&self.{f})"),
                    )
                })
                .collect();
            object_expr(&pairs)
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Array({})",
                vec_expr(&items, "::serde::Value")
            )
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Array({})",
                                vec_expr(&items, "::serde::Value")
                            )
                        };
                        let tagged = object_expr(&[(vname.clone(), payload)]);
                        let _ = write!(arms, "{name}::{vname}({}) => {tagged},", binds.join(", "));
                    }
                    VariantKind::Named(fields) => {
                        let pairs: Vec<(String, String)> = fields
                            .iter()
                            .map(|f| (f.clone(), format!("::serde::Serialize::serialize({f})")))
                            .collect();
                        let tagged = object_expr(&[(vname.clone(), object_expr(&pairs))]);
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {} }} => {tagged},",
                            fields.join(", ")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            if fields.is_empty() {
                format!(
                    "let _ = ::serde::de::expect_object(v)?;\n\
                     ::std::result::Result::Ok({name} {{}})"
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::de::field(fields, \"{f}\")?"))
                    .collect();
                format!(
                    "let fields = ::serde::de::expect_object(v)?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}usize])?"))
                .collect();
            format!(
                "let items = ::serde::de::expect_tuple(v, {n}usize)?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Unit => format!("let _ = v;\n::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let arm_body = match &v.kind {
                    VariantKind::Unit => format!(
                        "{{ ::serde::de::expect_unit(payload, \"{vname}\")?; \
                           ::std::result::Result::Ok({name}::{vname}) }}"
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{{ let p = ::serde::de::expect_payload(payload, \"{vname}\")?; \
                           ::std::result::Result::Ok({name}::{vname}(\
                               ::serde::Deserialize::deserialize(p)?)) }}"
                    ),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize(&items[{i}usize])?")
                            })
                            .collect();
                        format!(
                            "{{ let p = ::serde::de::expect_payload(payload, \"{vname}\")?; \
                               let items = ::serde::de::expect_tuple(p, {n}usize)?; \
                               ::std::result::Result::Ok({name}::{vname}({})) }}",
                            inits.join(", ")
                        )
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de::field(fields, \"{f}\")?"))
                            .collect();
                        format!(
                            "{{ let p = ::serde::de::expect_payload(payload, \"{vname}\")?; \
                               let fields = ::serde::de::expect_object(p)?; \
                               ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                            inits.join(", ")
                        )
                    }
                };
                let _ = write!(arms, "\"{vname}\" => {arm_body},");
            }
            format!(
                "let (tag, payload) = ::serde::de::variant(v)?;\n\
                 match tag {{ {arms} other => ::std::result::Result::Err(\
                     ::serde::DeError(::std::format!(\
                         \"unknown variant `{{other}}` for {name}\"))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
