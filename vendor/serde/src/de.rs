//! Helpers called by `serde_derive`-generated `Deserialize` impls.

use crate::{DeError, Deserialize, Value};

/// Asserts `v` is an object and borrows its fields.
pub fn expect_object(v: &Value) -> Result<&[(String, Value)], DeError> {
    v.as_object().ok_or_else(|| DeError::expected("object", v))
}

/// Asserts `v` is an array and borrows its elements.
pub fn expect_array(v: &Value) -> Result<&[Value], DeError> {
    v.as_array().ok_or_else(|| DeError::expected("array", v))
}

/// Asserts `v` is an array of exactly `n` elements.
pub fn expect_tuple(v: &Value, n: usize) -> Result<&[Value], DeError> {
    let items = expect_array(v)?;
    if items.len() != n {
        return Err(DeError(format!(
            "expected tuple of {n}, found array of {}",
            items.len()
        )));
    }
    Ok(items)
}

/// Looks up a named field and deserializes it, attaching the field name to
/// any error.
pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, DeError> {
    let v = fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))?;
    T::deserialize(v).map_err(|e| DeError(format!("field `{name}`: {e}")))
}

/// Splits an externally-tagged enum value into `(tag, payload)`.
///
/// A bare string is a unit variant (`payload = None`); a single-entry object
/// is a data-carrying variant.
pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(tag) => Ok((tag, None)),
        Value::Object(fields) if fields.len() == 1 => {
            Ok((fields[0].0.as_str(), Some(&fields[0].1)))
        }
        _ => Err(DeError::expected(
            "variant tag string or single-key object",
            v,
        )),
    }
}

/// Asserts a unit variant carries no payload.
pub fn expect_unit(payload: Option<&Value>, tag: &str) -> Result<(), DeError> {
    match payload {
        None | Some(Value::Null) => Ok(()),
        Some(other) => Err(DeError(format!(
            "unit variant `{tag}` cannot carry a {}",
            other.kind()
        ))),
    }
}

/// Asserts a data-carrying variant actually has a payload.
pub fn expect_payload<'v>(payload: Option<&'v Value>, tag: &str) -> Result<&'v Value, DeError> {
    payload.ok_or_else(|| DeError(format!("variant `{tag}` is missing its payload")))
}
