//! Vendored offline stand-in for the slice of `serde` this workspace uses.
//!
//! The build environment has no network route to crates.io, so the
//! workspace vendors a value-tree serialization framework with the same
//! spelling as serde: `Serialize`/`Deserialize` traits, derive macros (from
//! the sibling `serde_derive` proc-macro crate) and a JSON-shaped [`Value`]
//! intermediate representation that `serde_json` renders and parses.
//!
//! Representation conventions match serde's JSON defaults: structs are
//! objects in field-declaration order, newtype structs are transparent,
//! enums are externally tagged (`"Variant"`, `{"Variant": ...}`), `Option`
//! is `null`/inner. Map and set entries are emitted in sorted key order so
//! serialized output is deterministic.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

/// JSON-shaped intermediate value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// One-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization to the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable path plus expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

// ---- primitive impls -------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as i128;
                if wide >= 0 && wide > i64::MAX as i128 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    _ => return Err(DeError::expected("integer", v)),
                };
                if wide < <$t>::MIN as i128 || wide > <$t>::MAX as i128 {
                    return Err(DeError(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(wide as $t)
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        Ok(parsed.try_into().expect("length checked above"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", v))?;
                let want = [$( $idx ),+].len();
                if items.len() != want {
                    return Err(DeError(format!(
                        "expected tuple of {want}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i32::deserialize(&(-7i32).serialize()), Ok(-7));
        assert_eq!(f32::deserialize(&0.1f32.serialize()), Ok(0.1f32));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::deserialize(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::deserialize(&3u8.serialize()), Ok(Some(3)));
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()), Ok(v));
        let arr = [1.5f64, 2.5];
        assert_eq!(<[f64; 2]>::deserialize(&arr.serialize()), Ok(arr));
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        assert_eq!(HashMap::<String, u32>::deserialize(&m.serialize()), Ok(m));
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::deserialize(&t.serialize()), Ok(t));
    }

    #[test]
    fn map_serialization_is_sorted() {
        let mut m = HashMap::new();
        m.insert("zz".to_string(), 1u32);
        m.insert("aa".to_string(), 2u32);
        let Value::Object(fields) = m.serialize() else {
            panic!()
        };
        assert_eq!(fields[0].0, "aa");
        assert_eq!(fields[1].0, "zz");
    }
}
