//! Vendored offline stand-in for the slice of `serde_json` this workspace
//! uses: compact [`to_string`] and strict [`from_str`] over the value-tree
//! model of the vendored `serde` crate.
//!
//! Output is compact (no whitespace) with object fields in the order the
//! `Value` tree carries them. Floats print with Rust's shortest-roundtrip
//! `Display`, so every finite `f64` (and every `f32` widened to `f64`)
//! survives a write/parse cycle exactly. Non-finite floats serialize as
//! `null`, matching upstream `serde_json`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses JSON and deserializes into `T`. Trailing non-whitespace input is
/// an error.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    Ok(T::deserialize(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `Display` for f64 is the shortest string that parses back exactly;
    // integral values print without a fraction ("1"), which parses as an
    // integer — the numeric deserializers accept either.
    out.push_str(&f.to_string());
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_shape() {
        let v = Value::Object(vec![
            ("version".to_string(), Value::Int(1)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Int(1), Value::Float(0.5)]),
            ),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, r#"{"version":1,"xs":[1,0.5]}"#);
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,-2,3.5],"b":"x\ny","c":null,"d":true}"#;
        let v = parse_value_complete(text).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn f32_values_survive_exactly() {
        for &x in &[
            0.1f32,
            1.0 / 3.0,
            f32::MIN_POSITIVE,
            -std::f32::consts::E,
            1e30,
        ] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }
}
