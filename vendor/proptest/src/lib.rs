//! Vendored offline stand-in for the slice of the `proptest` API this
//! workspace uses: random-generation property testing without shrinking.
//!
//! A [`Strategy`] generates values from a seeded [`TestRng`]; the
//! [`proptest!`] macro runs each property over `ProptestConfig::cases`
//! deterministically-seeded cases and reports the generated arguments of
//! the first failing case before re-raising its panic. Upstream proptest
//! also *shrinks* failures to minimal counterexamples; this stand-in
//! reports the failing case as generated, which keeps failures exactly
//! reproducible (seeds derive from the test name and case index alone).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod string;

/// Deterministic per-case generator.
pub type TestRng = StdRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// Generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (the `prop_oneof!` engine).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy over the whole domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

/// String literals are regex-subset strategies (see [`string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// FNV-1a, used to derive per-test seeds from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: `case` generates inputs from the provided rng, runs
/// the body under `catch_unwind`, and returns the result plus a rendering of
/// the generated inputs for failure reporting. Called by [`proptest!`].
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (std::thread::Result<()>, String),
{
    let base = fnv1a(name.as_bytes());
    for i in 0..cfg.cases {
        let mut rng = TestRng::seed_from_u64(base ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let (result, inputs) = case(&mut rng);
        if let Err(payload) = result {
            eprintln!("proptest property `{name}` failed on case {i} with inputs: {inputs}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Defines property-test functions over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let inputs = [
                    $(format!("{} = {:?}", stringify!($arg), $arg)),+
                ].join(", ");
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                (outcome, inputs)
            });
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

/// Uniform choice between strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strat = prop::collection::vec(0u32..100, 1..10);
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn oneof_union_produces_all_arms(vs in prop::collection::vec(
            prop_oneof![Just(1u8), Just(2u8), Just(3u8)], 64..=64,
        )) {
            for v in &vs {
                prop_assert!((1..=3).contains(v));
            }
        }

        #[test]
        fn flat_map_dependency_holds(
            pair in (1usize..6).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u8..10, n..=n))
            }),
        ) {
            let (len, vs) = pair;
            prop_assert_eq!(vs.len(), len);
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z][a-z0-9_]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn hash_sets_respect_size(set in prop::collection::hash_set("[A-Z]{1,6}", 1..20)) {
            prop_assert!((1..20).contains(&set.len()));
        }
    }
}
