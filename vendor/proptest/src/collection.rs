//! Collection strategies: vectors and hash sets of generated elements.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::{Strategy, TestRng};

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

/// Strategy for vectors of `element` values (see [`vec`]).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for hash sets of `element` values (see [`hash_set`]).
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = HashSet::with_capacity(target);
        // Duplicates do not grow the set; cap the attempts so a small value
        // domain cannot loop forever (the set may then end up short, which
        // mirrors upstream proptest's behavior of giving up on dense sets).
        let max_attempts = 20 * target + 100;
        for _ in 0..max_attempts {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Hash sets with sizes drawn from `size`.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}
