//! Regex-subset string generation.
//!
//! Supports the fragment of regex syntax the workspace's properties use:
//! literal characters, character classes (`[a-z0-9_ ]`, with ranges and
//! literals, no negation), and counted quantifiers `{n}` / `{m,n}` plus
//! `?`, `*` and `+` (the unbounded forms are capped at 8 repetitions).
//! Anything else panics with the offending pattern, which turns an
//! unsupported strategy into a loud test error rather than wrong data.

use rand::Rng;

use crate::TestRng;

/// One pattern element and its repetition bounds.
struct Atom {
    /// Candidate characters (a single literal or an expanded class).
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates a string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            let i = rng.gen_range(0..atom.choices.len());
            out.push(atom.choices[i]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let (class, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                class
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![c]
            }
            c @ ('(' | ')' | '|' | '.' | '^' | '$') => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        assert!(
            !choices.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut class = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            *chars
                .get(i)
                .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))
        } else {
            chars[i]
        };
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&e| e != ']') {
            let end = chars[i + 2];
            assert!(c <= end, "inverted range {c}-{end} in pattern {pattern:?}");
            class.extend(c..=end);
            i += 3;
        } else {
            class.push(c);
            i += 1;
        }
    }
    assert!(
        chars.get(i) == Some(&']'),
        "unterminated character class in pattern {pattern:?}"
    );
    (class, i + 1)
}

fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("quantifier lower bound"),
                    hi.parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.parse().expect("quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max, close + 1)
        }
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn patterns_used_by_the_workspace_generate_matches() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());

            let t = generate_matching("[A-Z]{1,6}", &mut rng);
            assert!((1..=6).contains(&t.len()), "{t:?}");
            assert!(t.chars().all(|c| c.is_ascii_uppercase()));

            let u = generate_matching("[a-zA-Z0-9 _]{0,10}", &mut rng);
            assert!(u.len() <= 10, "{u:?}");
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = TestRng::seed_from_u64(12);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching(r"a\[b", &mut rng), "a[b");
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn alternation_is_rejected() {
        let mut rng = TestRng::seed_from_u64(13);
        generate_matching("a|b", &mut rng);
    }
}
