//! Vendored offline stand-in for the slice of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no network route to crates.io, so the
//! workspace vendors the small surface it depends on rather than the full
//! crate: a seedable [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64), uniform integer/float ranges with rejection sampling, the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and the
//! [`seq::SliceRandom`] shuffle/choose helpers.
//!
//! Streams differ from upstream `rand` (which uses ChaCha12 for `StdRng`),
//! but every consumer in this repository only relies on determinism given a
//! seed and on uniformity — both of which hold here.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the full domain for integers and
/// `bool`, uniform in `[0, 1)` for floats.
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full f64 mantissa resolution.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniformly samples `0 <= x < span` without modulo bias.
pub(crate) fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` not exceeding 2^64, minus one: accept zone.
    let rem = (u64::MAX % span).wrapping_add(1) % span;
    let zone = u64::MAX - rem;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Types with a uniform sampler over arbitrary sub-ranges.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[lo, hi)`; panics when empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`; panics when empty.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + sample_below(rng, span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.75..1.25);
            assert!((0.75..1.25).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let mean32: f32 = (0..n).map(|_| rng.gen::<f32>()).sum::<f32>() / n as f32;
        assert!((mean32 - 0.5).abs() < 0.02, "mean {mean32}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
