//! Sequence helpers: in-place shuffling and uniform element choice.

use crate::{sample_below, RngCore};

/// Extension methods on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher-Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = sample_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = sample_below(rng, self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements staying put is astronomically unlikely"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
