//! Vendored offline stand-in for the slice of the `criterion` API this
//! workspace uses: named benchmark functions with `iter`/`iter_batched`
//! timing loops and the `criterion_group!`/`criterion_main!` entry points.
//!
//! Measurement is deliberately simple — warm up, pick an iteration count
//! that fills a fixed measurement window, report mean wall time per
//! iteration — with none of upstream criterion's outlier analysis or HTML
//! reports. Numbers print to stdout.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark driver; collects and prints per-benchmark timings.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// this stand-in times each routine invocation individually either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Set up once per routine call.
    PerIteration,
}

const WARMUP: Duration = Duration::from_millis(200);
const MEASUREMENT: Duration = Duration::from_millis(600);

impl Criterion {
    /// Runs and reports one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{name}: no iterations recorded");
            return self;
        }
        let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
        println!(
            "{name}: {} per iter ({} iters)",
            format_ns(per_iter),
            b.iters
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing loop handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up while estimating the per-call cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let n = ((MEASUREMENT.as_secs_f64() / per_call) as u64).clamp(1, 100_000_000);
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = n;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm up and estimate cost with setup excluded.
        let mut warm_spent = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_spent < WARMUP {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            warm_spent += t.elapsed();
            warm_iters += 1;
        }
        let per_call = warm_spent.as_secs_f64() / warm_iters as f64;
        let n = ((MEASUREMENT.as_secs_f64() / per_call) as u64).clamp(1, 100_000_000);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.total = total;
        self.iters = n;
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
